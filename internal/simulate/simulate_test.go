package simulate

import (
	"context"
	"errors"
	"math"
	"testing"

	"rainshine/internal/failure"
	"rainshine/internal/ticket"
	"rainshine/internal/topology"
)

// smallCfg returns a fast configuration for tests: a reduced fleet over
// one year.
func smallCfg() Config {
	return Config{
		Seed:     7,
		Days:     365,
		Topology: topology.Config{RacksPerDC: [2]int{60, 50}},
	}
}

func runSmall(t *testing.T) *Result {
	t.Helper()
	res, err := Run(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunProducesEvents(t *testing.T) {
	res := runSmall(t)
	if len(res.Events) == 0 {
		t.Fatal("no events produced")
	}
	if len(res.Tickets) <= len(res.Events) {
		t.Errorf("tickets (%d) should exceed hardware events (%d) once software tickets are added",
			len(res.Tickets), len(res.Events))
	}
}

func TestEventFieldsValid(t *testing.T) {
	res := runSmall(t)
	for _, ev := range res.Events {
		if ev.Rack < 0 || int(ev.Rack) >= len(res.Fleet.Racks) {
			t.Fatalf("event rack %d out of range", ev.Rack)
		}
		if ev.Day < 0 || int(ev.Day) >= res.Days {
			t.Fatalf("event day %d out of range", ev.Day)
		}
		if ev.Hour < 0 || ev.Hour >= 26.1 { // shocks may spill slightly past midnight
			t.Fatalf("event hour %v out of range", ev.Hour)
		}
		if ev.RepairHours < 0.5 || ev.RepairHours > maxRepairHours {
			t.Fatalf("repair hours %v out of range", ev.RepairHours)
		}
		if ev.Component < 0 || ev.Component >= failure.NumComponents {
			t.Fatalf("component %d invalid", ev.Component)
		}
		rack := &res.Fleet.Racks[ev.Rack]
		if int(ev.Day) < rack.CommissionDay {
			t.Fatalf("event before rack commission: day %d < %d", ev.Day, rack.CommissionDay)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := runSmall(t)
	b := runSmall(t)
	if len(a.Events) != len(b.Events) || len(a.Tickets) != len(b.Tickets) {
		t.Fatalf("sizes differ: %d/%d events, %d/%d tickets",
			len(a.Events), len(b.Events), len(a.Tickets), len(b.Tickets))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	for i := range a.Tickets {
		if a.Tickets[i] != b.Tickets[i] {
			t.Fatalf("ticket %d differs", i)
		}
	}
}

func TestSeedChangesOutput(t *testing.T) {
	cfg := smallCfg()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 8
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) == len(b.Events) {
		same := true
		for i := range a.Events {
			if a.Events[i] != b.Events[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical event streams")
		}
	}
}

func TestTicketMixRoughlyMatchesTableII(t *testing.T) {
	res := runSmall(t)
	for dc := 0; dc < 2; dc++ {
		mix := ticket.Mix(res.Tickets, dc)
		paper := ticket.PaperMix(dc)
		// Category-level agreement within generous tolerance: the
		// hardware fraction is emergent from the hazard model, the rest
		// is calibrated.
		var gotHW, wantHW, gotSW, wantSW float64
		for f := ticket.Timeout; f < ticket.NumFaults; f++ {
			switch ticket.CategoryOf(f) {
			case ticket.Hardware:
				gotHW += mix[f]
				wantHW += paper[f]
			case ticket.Software:
				gotSW += mix[f]
				wantSW += paper[f]
			}
		}
		if math.Abs(gotHW-wantHW) > 6 {
			t.Errorf("DC%d hardware share = %.1f%%, paper %.1f%%", dc+1, gotHW, wantHW)
		}
		if math.Abs(gotSW-wantSW) > 6 {
			t.Errorf("DC%d software share = %.1f%%, paper %.1f%%", dc+1, gotSW, wantSW)
		}
		// Disk must lead the hardware categories (Table II).
		if mix[ticket.DiskFailure] < mix[ticket.MemoryFailure] {
			t.Errorf("DC%d: disk (%.1f%%) should exceed memory (%.1f%%)",
				dc+1, mix[ticket.DiskFailure], mix[ticket.MemoryFailure])
		}
	}
}

func TestFalsePositiveInjectionAndFiltering(t *testing.T) {
	res := runSmall(t)
	fp := 0
	for _, tk := range res.Tickets {
		if tk.FalsePositive {
			fp++
		}
	}
	if fp == 0 {
		t.Fatal("no false positives injected")
	}
	frac := float64(fp) / float64(len(res.Tickets))
	if frac < 0.02 || frac > 0.08 {
		t.Errorf("false positive fraction = %v, want ~0.05", frac)
	}
	if got := len(ticket.TruePositives(res.Tickets)); got != len(res.Tickets)-fp {
		t.Errorf("TruePositives = %d, want %d", got, len(res.Tickets)-fp)
	}
}

func TestSkipNonHardware(t *testing.T) {
	cfg := smallCfg()
	cfg.SkipNonHardware = true
	cfg.FalsePositiveRate = -1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tickets) != len(res.Events) {
		t.Errorf("tickets %d != events %d with non-hardware skipped", len(res.Tickets), len(res.Events))
	}
	for _, tk := range res.Tickets {
		if tk.Category() != ticket.Hardware {
			t.Fatal("non-hardware ticket produced despite SkipNonHardware")
		}
	}
}

func TestShockEventsExist(t *testing.T) {
	res := runSmall(t)
	shocks := map[failure.Component]int{}
	for _, ev := range res.Events {
		if ev.Shock {
			if ev.Component == failure.DIMM {
				t.Fatal("shock event with DIMM component")
			}
			shocks[ev.Component]++
		}
	}
	// Both shock flavours must occur: server batches (storage racks)
	// and disk storms (compute racks).
	if shocks[failure.ServerOther] == 0 || shocks[failure.Disk] == 0 {
		t.Fatalf("shock mix = %v; want both server and disk shocks", shocks)
	}
}

func TestDiskEventsDominate(t *testing.T) {
	res := runSmall(t)
	counts := map[failure.Component]int{}
	for _, ev := range res.Events {
		counts[ev.Component]++
	}
	if counts[failure.Disk] <= counts[failure.DIMM] {
		t.Errorf("disk events (%d) should exceed DIMM events (%d)",
			counts[failure.Disk], counts[failure.DIMM])
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Days: -5}); err == nil {
		t.Error("negative days should error")
	}
}

func TestIsWeekendFastMatchesCalendar(t *testing.T) {
	// Day 0 is Sunday; verify the fast path across four weeks.
	for d := 0; d < 28; d++ {
		want := d%7 == 0 || d%7 == 6
		if isWeekendFast(d) != want {
			t.Fatalf("isWeekendFast(%d) mismatch", d)
		}
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	base := smallCfg()
	var want *Result
	for _, workers := range []int{1, 2, 7, 64} {
		cfg := base
		cfg.Workers = workers
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = res
			continue
		}
		if len(res.Events) != len(want.Events) {
			t.Fatalf("workers=%d: %d events, want %d", workers, len(res.Events), len(want.Events))
		}
		for i := range res.Events {
			if res.Events[i] != want.Events[i] {
				t.Fatalf("workers=%d: event %d differs", workers, i)
			}
		}
		if len(res.Tickets) != len(want.Tickets) {
			t.Fatalf("workers=%d: ticket count differs", workers)
		}
	}
}

func TestDeviceIdentityAndRepeats(t *testing.T) {
	res := runSmall(t)
	// Every hardware event names a valid device.
	for _, ev := range res.Events {
		rack := &res.Fleet.Racks[ev.Rack]
		limit := 0
		switch ev.Component {
		case failure.Disk:
			limit = rack.Disks()
		case failure.DIMM:
			limit = rack.DIMMs()
		default:
			limit = rack.Servers
		}
		if ev.Device < 0 || int(ev.Device) >= limit {
			t.Fatalf("device %d out of range [0,%d) for %v", ev.Device, limit, ev.Component)
		}
	}
	stats := ticket.RepeatStats(res.Tickets)
	if stats.Hardware == 0 {
		t.Fatal("no hardware tickets")
	}
	// The imperfect-replacement model must produce repeats, but they
	// stay a minority of the RMA load.
	if stats.Repeats == 0 {
		t.Fatal("no repeat tickets despite refail model")
	}
	if stats.RepeatFraction > 0.4 {
		t.Errorf("repeat fraction %v implausibly high", stats.RepeatFraction)
	}
	if stats.MaxRepeat < 2 {
		t.Errorf("max repeat = %d", stats.MaxRepeat)
	}
	// Repeat numbering is consistent per device: occurrences are dense
	// starting at 1.
	type key struct{ rack, dev, comp int }
	maxOcc := map[key]int{}
	count := map[key]int{}
	for _, tk := range res.Tickets {
		if tk.FalsePositive || tk.Category() != ticket.Hardware {
			continue
		}
		k := key{tk.Rack, tk.Device, int(tk.Component)}
		count[k]++
		if tk.Repeat > maxOcc[k] {
			maxOcc[k] = tk.Repeat
		}
	}
	for k, c := range count {
		if maxOcc[k] != c {
			t.Fatalf("device %v: %d tickets but max repeat %d", k, c, maxOcc[k])
		}
	}
}

func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, smallCfg()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	// Cancel from another goroutine while the rack walk is running; the
	// run must abort with the context's error, never partial results.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { cancel(); close(done) }()
	res, err := RunContext(ctx, smallCfg())
	<-done
	if err == nil {
		// The run may legitimately win the race and finish first; only a
		// cancellation observed mid-run must surface as an error.
		if res == nil {
			t.Fatal("nil result without error")
		}
		return
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("canceled run returned partial results")
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	a, err := Run(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) || len(a.Tickets) != len(b.Tickets) {
		t.Fatalf("RunContext diverges from Run: %d/%d events, %d/%d tickets",
			len(a.Events), len(b.Events), len(a.Tickets), len(b.Tickets))
	}
}
