package frame

// ChunkRows is the canonical chunk granularity: column scans that fan
// out over internal/parallel split on fixed ChunkRows boundaries, never
// on the worker count, so per-chunk partial results can be merged in
// chunk order and the reduction is byte-identical for every -workers.
const ChunkRows = 64 * 1024

// Chunk is a view of a contiguous row range [Lo, Hi) of one column.
// Exactly one of Data/Codes aliases the column's dense storage (no
// copy), matching the column's physical layout; Missing and MarkNull
// address rows chunk-relative.
type Chunk struct {
	Lo, Hi int
	Data   []float64 // float64-backed columns
	Codes  []uint8   // typed (uint8 code) columns
	col    *Column
}

// Len returns the number of rows in the chunk.
func (ch Chunk) Len() int { return ch.Hi - ch.Lo }

// Missing reports whether chunk-relative row i is missing (null-marked
// or non-finite) in the underlying column.
func (ch Chunk) Missing(i int) bool { return ch.col.Missing(ch.Lo + i) }

// MarkNull null-marks chunk-relative row i in the underlying column.
// The write lands in shared column storage: only mutate chunks of an
// exclusively owned column (Clone the column first otherwise).
func (ch Chunk) MarkNull(i int) { ch.col.MarkNull(ch.Lo + i) }

// Chunk returns the view of rows [lo, hi) of the column.
func (c *Column) Chunk(lo, hi int) Chunk {
	ch := Chunk{Lo: lo, Hi: hi, col: c}
	if c.codes != nil {
		ch.Codes = c.codes[lo:hi]
	} else {
		ch.Data = c.Data[lo:hi]
	}
	return ch
}

// Chunks splits the column into views of at most chunkRows rows each
// (ChunkRows when chunkRows <= 0), in row order. The fixed split is the
// determinism contract: fan the chunks across any number of workers and
// merge per-chunk results in slice order.
func (c *Column) Chunks(chunkRows int) []Chunk {
	bounds := ChunkBounds(c.Len(), chunkRows)
	out := make([]Chunk, len(bounds))
	for i, b := range bounds {
		out[i] = c.Chunk(b[0], b[1])
	}
	return out
}

// ChunkBounds splits [0, n) into [lo, hi) ranges of at most chunkRows
// rows (ChunkRows when chunkRows <= 0), in order. It is the shared
// boundary rule behind Column.Chunks for callers that scan several
// columns in lockstep.
func ChunkBounds(n, chunkRows int) [][2]int {
	if n <= 0 {
		return nil
	}
	if chunkRows <= 0 {
		chunkRows = ChunkRows
	}
	out := make([][2]int, 0, (n+chunkRows-1)/chunkRows)
	for lo := 0; lo < n; lo += chunkRows {
		hi := lo + chunkRows
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}
