package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rainshine"
	"rainshine/internal/faults"
	"rainshine/internal/server"
)

// serveConfig is the parsed form of the serve subcommand's flags.
type serveConfig struct {
	addr    string
	cache   int
	timeout time.Duration
	workers int
	warmup  bool

	buildTimeout     time.Duration
	maxConcurrent    int
	maxQueue         int
	q3Concurrent     int
	q3Queue          int
	rps              float64
	burst            int
	breakerThreshold int
	breakerCooldown  time.Duration
	chaos            bool
	chaosSeed        uint64

	follow         string
	followSeed     uint64
	followDays     int
	followRacks    string
	followFaults   bool
	followLateness int

	cpuprofile string
	memprofile string
}

// parseServeFlags parses and validates the serve flags without binding
// a port, so tests can exercise it directly.
func parseServeFlags(args []string) (serveConfig, error) {
	fs := flag.NewFlagSet("rainshine serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cache := fs.Int("cache", 4, "max studies held in the registry LRU")
	fs.IntVar(cache, "cache-size", 4, "alias for -cache")
	timeout := fs.Duration("timeout", 5*time.Minute,
		"per-request deadline, including any study build the request triggers")
	workers := fs.Int("workers", 0,
		"worker goroutines per study build and analysis (0 = all CPUs, 1 = serial; results identical)")
	warmup := fs.Bool("warmup", false,
		"pre-materialize every table and figure of each study before publishing it")
	buildTimeout := fs.Duration("build-timeout", 10*time.Minute,
		"hard cap on each detached study build, independent of request deadlines")
	maxConcurrent := fs.Int("max-concurrent", 256,
		"concurrently served /v1 requests outside q3")
	maxQueue := fs.Int("max-queue", 512,
		"extra requests allowed to wait for a slot before shedding 429 (0 = shed immediately)")
	q3Concurrent := fs.Int("q3-concurrent", 32,
		"concurrently served /v1/q3 grid requests (the expensive class, shed first)")
	q3Queue := fs.Int("q3-queue", 64,
		"q3 wait-queue depth before shedding 429 (0 = shed immediately)")
	rps := fs.Float64("rps", 0,
		"global admitted requests/second across /v1 (0 = unlimited)")
	burst := fs.Int("burst", 0,
		"token-bucket depth for -rps (0 = 2x rps)")
	breakerThreshold := fs.Int("breaker-threshold", 5,
		"consecutive build failures that open the study-build circuit breaker (0 = disabled)")
	breakerCooldown := fs.Duration("breaker-cooldown", 30*time.Second,
		"how long an open breaker sheds builds before probing")
	chaos := fs.Bool("chaos", false,
		"deterministic fault injection: seeded build failures, latency spikes, slow clients")
	chaosSeed := fs.Uint64("chaos-seed", 42, "seed for the -chaos fault plan")
	follow := fs.String("follow", "",
		"tail this append-only stream log: maintain a live watermark study and serve it on /v1/stream")
	followSeed := fs.Uint64("follow-seed", 42, "root seed of the followed stream's study")
	followDays := fs.Int("follow-days", 930, "observation window of the followed stream's study")
	followRacks := fs.String("follow-racks", "",
		"rack counts dc1,dc2 of the followed stream's study (default paper-scale 331,290)")
	followFaults := fs.Bool("follow-faults", false,
		"the followed stream carries the default dirty-data fault mix")
	followLateness := fs.Int("follow-lateness", 0,
		"out-of-order slack in days before the watermark closes a day (0 = 1 day, negative = none)")
	cpuprofile := fs.String("cpuprofile", "",
		"write a CPU profile covering the daemon's whole lifetime to this file")
	memprofile := fs.String("memprofile", "",
		"write a heap profile at shutdown to this file")
	if err := fs.Parse(args); err != nil {
		return serveConfig{}, err
	}
	if rest := fs.Args(); len(rest) > 0 {
		return serveConfig{}, fmt.Errorf("serve takes no positional arguments, got %q", rest)
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *addr == "" {
		return serveConfig{}, errors.New("-addr must not be empty")
	}
	if *cache < 1 {
		return serveConfig{}, fmt.Errorf("-cache must be at least 1, got %d", *cache)
	}
	if *timeout <= 0 {
		return serveConfig{}, fmt.Errorf("-timeout must be positive, got %s", *timeout)
	}
	if *workers < 0 {
		return serveConfig{}, fmt.Errorf("-workers must not be negative, got %d", *workers)
	}
	if *buildTimeout <= 0 {
		return serveConfig{}, fmt.Errorf("-build-timeout must be positive, got %s", *buildTimeout)
	}
	if *maxConcurrent < 1 {
		return serveConfig{}, fmt.Errorf("-max-concurrent must be at least 1, got %d", *maxConcurrent)
	}
	if *q3Concurrent < 1 {
		return serveConfig{}, fmt.Errorf("-q3-concurrent must be at least 1, got %d", *q3Concurrent)
	}
	if *maxQueue < 0 || *q3Queue < 0 {
		return serveConfig{}, fmt.Errorf("queue depths must not be negative, got -max-queue %d -q3-queue %d",
			*maxQueue, *q3Queue)
	}
	if *rps < 0 {
		return serveConfig{}, fmt.Errorf("-rps must not be negative, got %g", *rps)
	}
	if *burst < 0 {
		return serveConfig{}, fmt.Errorf("-burst must not be negative, got %d", *burst)
	}
	if *burst > 0 && *rps == 0 {
		return serveConfig{}, errors.New("-burst is meaningless without -rps")
	}
	if *breakerCooldown <= 0 {
		return serveConfig{}, fmt.Errorf("-breaker-cooldown must be positive, got %s", *breakerCooldown)
	}
	if set["chaos-seed"] && !*chaos {
		return serveConfig{}, errors.New("-chaos-seed requires -chaos")
	}
	if *follow == "" {
		for _, name := range []string{"follow-seed", "follow-days", "follow-racks", "follow-faults", "follow-lateness"} {
			if set[name] {
				return serveConfig{}, fmt.Errorf("-%s requires -follow", name)
			}
		}
	} else {
		if *followDays < 1 {
			return serveConfig{}, fmt.Errorf("-follow-days must be positive, got %d", *followDays)
		}
		if *followRacks != "" {
			if _, _, err := rainshine.ParseRacks(*followRacks); err != nil {
				return serveConfig{}, fmt.Errorf("-follow-racks: %s",
					strings.TrimPrefix(err.Error(), "rainshine: "))
			}
		}
	}
	return serveConfig{
		addr: *addr, cache: *cache, timeout: *timeout,
		workers: *workers, warmup: *warmup,
		buildTimeout:     *buildTimeout,
		maxConcurrent:    *maxConcurrent,
		maxQueue:         *maxQueue,
		q3Concurrent:     *q3Concurrent,
		q3Queue:          *q3Queue,
		rps:              *rps,
		burst:            *burst,
		breakerThreshold: *breakerThreshold,
		breakerCooldown:  *breakerCooldown,
		chaos:            *chaos,
		chaosSeed:        *chaosSeed,
		follow:           *follow,
		followSeed:       *followSeed,
		followDays:       *followDays,
		followRacks:      *followRacks,
		followFaults:     *followFaults,
		followLateness:   *followLateness,
		cpuprofile:       *cpuprofile,
		memprofile:       *memprofile,
	}, nil
}

// serverConfig translates the parsed flags to the daemon's config. The
// flag spelling "0" means "none at all" for queues and the breaker,
// which the server spells as a negative value (its zero value means
// "use the default").
func (cfg serveConfig) serverConfig() server.Config {
	rc := server.ResilienceConfig{
		MaxConcurrent:    cfg.maxConcurrent,
		MaxQueue:         cfg.maxQueue,
		Q3Concurrent:     cfg.q3Concurrent,
		Q3Queue:          cfg.q3Queue,
		RPS:              cfg.rps,
		Burst:            cfg.burst,
		BreakerThreshold: cfg.breakerThreshold,
		BreakerCooldown:  cfg.breakerCooldown,
		BuildTimeout:     cfg.buildTimeout,
	}
	if cfg.maxQueue == 0 {
		rc.MaxQueue = -1
	}
	if cfg.q3Queue == 0 {
		rc.Q3Queue = -1
	}
	if cfg.breakerThreshold <= 0 {
		rc.BreakerThreshold = -1
	}
	sc := server.Config{
		CacheSize:  cfg.cache,
		Timeout:    cfg.timeout,
		Workers:    cfg.workers,
		Warmup:     cfg.warmup,
		Resilience: rc,
	}
	if cfg.chaos {
		cc := faults.DefaultChaos(cfg.chaosSeed)
		sc.Chaos = &cc
	}
	if cfg.follow != "" {
		study := server.StudyConfig{
			Seed:   cfg.followSeed,
			Days:   cfg.followDays,
			Faults: cfg.followFaults,
		}
		if cfg.followRacks != "" {
			// Validated by parseServeFlags; an error here is impossible.
			a, b, _ := rainshine.ParseRacks(cfg.followRacks)
			study.Racks = [2]int{a, b}
		}
		sc.Follow = &server.FollowConfig{
			Path:     cfg.follow,
			Study:    study,
			Lateness: cfg.followLateness,
		}
	}
	return sc
}

// serveCmd runs the analysis daemon until SIGINT/SIGTERM, then drains
// in-flight requests and exits cleanly.
func serveCmd(args []string) (err error) {
	cfg, err := parseServeFlags(args)
	if err != nil {
		return err
	}
	stopProfiles, err := startProfiles(cfg.cpuprofile, cfg.memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()
	srv := server.New(cfg.serverConfig())
	hs := &http.Server{
		Addr:              cfg.addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "rainshine serve: listening on %s (cache %d studies, timeout %s)\n",
		cfg.addr, cfg.cache, cfg.timeout)
	if cfg.follow != "" {
		fmt.Fprintf(os.Stderr, "rainshine serve: following stream log %s (seed %d, %d days)\n",
			cfg.follow, cfg.followSeed, cfg.followDays)
		go func() {
			// A corrupt or unreadable log degrades /v1/stream (its state
			// carries the error); the batch endpoints keep serving.
			if err := srv.Follow(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "rainshine serve: stream follower: %v\n", err)
			}
		}()
	}
	if cfg.chaos {
		fmt.Fprintf(os.Stderr, "rainshine serve: CHAOS MODE ON (seed %d): injecting deterministic build failures, latency spikes, slow clients\n",
			cfg.chaosSeed)
	}

	select {
	case err := <-errc:
		// ListenAndServe only returns early on its own for setup
		// failures (port in use, bad address).
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C force-quits
	fmt.Fprintln(os.Stderr, "rainshine serve: draining in-flight requests...")
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("serve: %w", err)
	}
	snap := srv.Metrics().Snapshot(cfg.cache)
	fmt.Fprintf(os.Stderr, "rainshine serve: done (%d builds, %d cache hits, %d misses, %d shed, %d degraded)\n",
		snap.Builds.Completed, snap.Cache.Hits, snap.Cache.Misses,
		snap.Resilience.ShedTotal(), snap.Resilience.DegradedServed)
	return nil
}
