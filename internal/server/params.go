package server

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"

	"rainshine"
)

// maxDays bounds the observation window a request may ask for; it keeps
// one query from pinning a core for hours.
const maxDays = 3660

// parseStudyConfig extracts the simulation-defining parameters shared
// by every /v1 endpoint:
//
//	seed   uint64  root RNG seed            (default 42)
//	days   int     observation window, days (default 930, max 3660)
//	racks  a,b     per-DC rack counts       (default 331,290)
//	faults bool    dirty-data mode          (default false)
func parseStudyConfig(q url.Values) (StudyConfig, error) {
	var cfg StudyConfig
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return cfg, fmt.Errorf("bad seed %q: must be an unsigned integer", v)
		}
		cfg.Seed = seed
	}
	if v := q.Get("days"); v != "" {
		days, err := strconv.Atoi(v)
		if err != nil || days < 1 {
			return cfg, fmt.Errorf("bad days %q: must be a positive integer", v)
		}
		if days > maxDays {
			return cfg, fmt.Errorf("bad days %d: max %d", days, maxDays)
		}
		cfg.Days = days
	}
	if v := q.Get("racks"); v != "" {
		// Same validation as the CLI -racks flag: non-positive counts
		// are rejected, not silently replaced with the paper defaults.
		a, b, err := rainshine.ParseRacks(v)
		if err != nil {
			return cfg, fmt.Errorf("bad racks %q: %v", v, trimPrefix(err))
		}
		cfg.Racks = [2]int{a, b}
	}
	if v := q.Get("faults"); v != "" {
		faults, err := strconv.ParseBool(v)
		if err != nil {
			return cfg, fmt.Errorf("bad faults %q: must be a boolean", v)
		}
		cfg.Faults = faults
	}
	return cfg.Normalize(), nil
}

// parseQ1Params extracts the Q1 evaluation parameters:
//
//	workload W1..W7  (default W6)
//	hourly   bool    (default false: daily granularity)
func parseQ1Params(q url.Values) (rainshine.Workload, bool, error) {
	wl := rainshine.W6
	if v := q.Get("workload"); v != "" {
		var err error
		if wl, err = rainshine.ParseWorkload(v); err != nil {
			return 0, false, fmt.Errorf("bad workload %q: %v", v, trimPrefix(err))
		}
	}
	hourly := false
	if v := q.Get("hourly"); v != "" {
		var err error
		if hourly, err = strconv.ParseBool(v); err != nil {
			return 0, false, fmt.Errorf("bad hourly %q: must be a boolean", v)
		}
	}
	return wl, hourly, nil
}

// parseRatios extracts Q2's price-ratio list ("1.0,1.5" by default).
func parseRatios(q url.Values) ([]float64, error) {
	v := q.Get("ratios")
	if v == "" {
		return nil, nil // VendorComparison applies its own default
	}
	var out []float64
	for _, part := range strings.Split(v, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("bad ratios %q: want positive numbers", v)
		}
		out = append(out, f)
	}
	return out, nil
}

// trimPrefix drops the "rainshine: " prefix from library errors so API
// messages read cleanly.
func trimPrefix(err error) string {
	return strings.TrimPrefix(err.Error(), "rainshine: ")
}
