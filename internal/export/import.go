package export

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"rainshine/internal/failure"
	"rainshine/internal/frame"
	"rainshine/internal/ticket"
)

// ReadFrameCSV parses a CSV (as written by FrameCSV, or assembled from
// an operator's own telemetry) into a frame. Column kinds are inferred:
// a column whose every value parses as a float becomes continuous,
// anything else becomes nominal with levels built from the distinct
// strings. Empty cells and the conventional "NA" token are nulls: they
// land in the column's bitmap without voting on the column's kind (a
// column of nothing but nulls infers continuous, all-null). This is
// the bring-your-own-data entry point: a real failure dataset in this
// shape can be fed straight into the MF analyses.
func ReadFrameCSV(r io.Reader) (*frame.Frame, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("export: reading csv: %w", err)
	}
	if len(records) < 2 {
		return nil, errors.New("export: csv needs a header and at least one row")
	}
	header := records[0]
	rows := records[1:]
	nCols := len(header)
	for i, rec := range rows {
		if len(rec) != nCols {
			return nil, fmt.Errorf("export: row %d has %d fields, header has %d", i+1, len(rec), nCols)
		}
	}
	f := frame.New(len(rows))
	for c, name := range header {
		if name == "" {
			return nil, fmt.Errorf("export: empty column name at position %d", c)
		}
		values := make([]string, len(rows))
		var nullRows []int
		numeric := true
		floats := make([]float64, len(rows))
		for r, rec := range rows {
			values[r] = rec[c]
			if rec[c] == "" || rec[c] == "NA" {
				nullRows = append(nullRows, r)
				floats[r] = math.NaN()
				continue
			}
			if numeric {
				v, err := strconv.ParseFloat(rec[c], 64)
				if err != nil {
					numeric = false
				} else {
					floats[r] = v
				}
			}
		}
		if numeric {
			if err := f.AddContinuous(name, floats); err != nil {
				return nil, err
			}
			markNulls(f.MustCol(name), nullRows)
			continue
		}
		// Nominal: levels come from the distinct non-empty strings, in
		// sorted order; null rows get a placeholder code that SetMissing
		// immediately overwrites.
		set := map[string]bool{}
		for _, v := range values {
			if v != "" {
				set[v] = true
			}
		}
		levels := make([]string, 0, len(set))
		for l := range set {
			levels = append(levels, l)
		}
		sort.Strings(levels)
		lookup := make(map[string]int, len(levels))
		for i, l := range levels {
			lookup[l] = i
		}
		codes := make([]int, len(rows))
		for r, v := range values {
			if v != "" {
				codes[r] = lookup[v]
			}
		}
		if err := f.AddNominalInts(name, codes, levels); err != nil {
			return nil, err
		}
		markNulls(f.MustCol(name), nullRows)
	}
	return f, nil
}

// markNulls records the quarantined rows in a freshly built column's
// bitmap. The column belongs to the frame this importer constructed, so
// the in-place marking is on owned storage.
func markNulls(c *frame.Column, rows []int) {
	for _, r := range rows {
		c.SetMissing(r)
	}
}

// ticketColumns is the TicketsCSV schema, in writer order.
var ticketColumns = []string{"id", "date", "day", "hour", "dc", "rack", "category", "fault", "false_positive", "repair_hours", "device", "repeat"}

// parseFault reverses Fault.String.
func parseFault(s string) (ticket.Fault, error) {
	for f := ticket.Fault(0); f < ticket.NumFaults; f++ {
		if f.String() == s {
			return f, nil
		}
	}
	return 0, fmt.Errorf("export: unknown fault %q", s)
}

// componentOfFault reconstructs the failed component class from the
// fault type: exact for disk and memory tickets; power/server/network
// collapse onto the shared server-other class (the same mapping ticket
// synthesis used, so nothing is lost). Non-hardware faults carry no
// component and get the zero value, as the writer's source did.
func componentOfFault(f ticket.Fault) failure.Component {
	switch f {
	case ticket.DiskFailure:
		return failure.Disk
	case ticket.MemoryFailure:
		return failure.DIMM
	case ticket.PowerFailure, ticket.ServerFailure, ticket.NetworkFailure:
		return failure.ServerOther
	default:
		return failure.Component(0)
	}
}

// ReadTicketsCSV parses a ticket CSV (as written by TicketsCSV, or an
// operator's own RMA feed in that shape) back into a ticket stream.
// The date and category columns are derived fields and are ignored on
// read — day and fault are authoritative. No validation beyond field
// syntax happens here; feed the result through ingest.ScrubTickets to
// quarantine semantically bad records.
func ReadTicketsCSV(r io.Reader) ([]ticket.Ticket, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("export: reading ticket header: %w", err)
	}
	idx := map[string]int{}
	for i, name := range header {
		idx[name] = i
	}
	for _, name := range ticketColumns {
		if _, ok := idx[name]; !ok {
			return nil, fmt.Errorf("export: ticket csv missing column %q", name)
		}
	}
	field := func(rec []string, name string) string { return rec[idx[name]] }
	var out []ticket.Ticket
	for row := 1; ; row++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("export: reading ticket row %d: %w", row, err)
		}
		if len(rec) < len(header) {
			return nil, fmt.Errorf("export: ticket row %d has %d fields, header has %d", row, len(rec), len(header))
		}
		var t ticket.Ticket
		if t.ID, err = strconv.Atoi(field(rec, "id")); err != nil {
			return nil, fmt.Errorf("export: ticket row %d id: %w", row, err)
		}
		if t.Day, err = strconv.Atoi(field(rec, "day")); err != nil {
			return nil, fmt.Errorf("export: ticket row %d day: %w", row, err)
		}
		if t.Hour, err = strconv.ParseFloat(field(rec, "hour"), 64); err != nil {
			return nil, fmt.Errorf("export: ticket row %d hour: %w", row, err)
		}
		dcs, ok := strings.CutPrefix(field(rec, "dc"), "DC")
		if !ok {
			return nil, fmt.Errorf("export: ticket row %d dc %q: want DC<n>", row, field(rec, "dc"))
		}
		dc, err := strconv.Atoi(dcs)
		if err != nil {
			return nil, fmt.Errorf("export: ticket row %d dc: %w", row, err)
		}
		t.DC = dc - 1
		if t.Rack, err = strconv.Atoi(field(rec, "rack")); err != nil {
			return nil, fmt.Errorf("export: ticket row %d rack: %w", row, err)
		}
		if t.Fault, err = parseFault(field(rec, "fault")); err != nil {
			return nil, fmt.Errorf("export: ticket row %d: %w", row, err)
		}
		if t.FalsePositive, err = strconv.ParseBool(field(rec, "false_positive")); err != nil {
			return nil, fmt.Errorf("export: ticket row %d false_positive: %w", row, err)
		}
		if t.RepairHours, err = strconv.ParseFloat(field(rec, "repair_hours"), 64); err != nil {
			return nil, fmt.Errorf("export: ticket row %d repair_hours: %w", row, err)
		}
		if t.Device, err = strconv.Atoi(field(rec, "device")); err != nil {
			return nil, fmt.Errorf("export: ticket row %d device: %w", row, err)
		}
		if t.Repeat, err = strconv.Atoi(field(rec, "repeat")); err != nil {
			return nil, fmt.Errorf("export: ticket row %d repeat: %w", row, err)
		}
		t.Component = componentOfFault(t.Fault)
		out = append(out, t)
	}
	return out, nil
}
