package stats

import (
	"math"
	"testing"
)

// FuzzQuantile checks that Quantile never panics and respects order
// statistics bounds for arbitrary (finite) inputs.
func FuzzQuantile(f *testing.F) {
	f.Add([]byte{1, 2, 3}, 0.5)
	f.Add([]byte{9}, 0.0)
	f.Add([]byte{0, 0, 255, 7}, 1.0)
	f.Fuzz(func(t *testing.T, raw []byte, p float64) {
		if len(raw) == 0 {
			return
		}
		xs := make([]float64, len(raw))
		for i, b := range raw {
			xs[i] = float64(b) - 128
		}
		q, err := Quantile(xs, p)
		if err != nil {
			if p >= 0 && p <= 1 && !math.IsNaN(p) {
				t.Fatalf("valid p=%v rejected: %v", p, err)
			}
			return
		}
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		if q < mn || q > mx {
			t.Fatalf("quantile %v outside sample range [%v, %v]", q, mn, mx)
		}
	})
}

// FuzzChiSquareCDF checks CDF bounds for arbitrary inputs.
func FuzzChiSquareCDF(f *testing.F) {
	f.Add(1.0, 1.0)
	f.Add(100.0, 3.0)
	f.Add(0.001, 50.0)
	f.Fuzz(func(t *testing.T, x, df float64) {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(df) || math.IsInf(df, 0) {
			return
		}
		if df <= 0 || df > 1e6 || x > 1e9 {
			return
		}
		v := ChiSquareCDF(x, df)
		if v < 0 || v > 1+1e-9 || math.IsNaN(v) {
			t.Fatalf("ChiSquareCDF(%v, %v) = %v", x, df, v)
		}
	})
}
