// Package analysistest runs an analyzer over fixture packages under a
// testdata/src tree and checks its diagnostics against // want
// annotations, mirroring the golang.org/x/tools package of the same
// name:
//
//	x := rand.Int() // want `unseeded randomness`
//
// Each annotation holds one or more quoted regular expressions that
// must each match a diagnostic reported on that line; diagnostics
// without a matching annotation fail the test, as do annotations left
// unmatched — so fixture lines without annotations double as negative
// (allowed) cases.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"rainshine/internal/analysis"
	"rainshine/internal/analysis/load"
)

// wantRe extracts the quoted expectations from a // want comment.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads each fixture package from dir/src and applies a.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader := load.NewLoader("analysistest.invalid", dir)
	loader.FixtureRoot = filepath.Join(dir, "src")
	for _, pkg := range pkgs {
		p, err := loader.Load(pkg)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkg, err)
		}
		var got []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Types,
			TypesInfo: p.Info,
			Report:    func(d analysis.Diagnostic) { got = append(got, d) },
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s: running %s: %v", pkg, a.Name, err)
		}
		check(t, p, a.Name, got)
	}
}

// expectation is one // want regexp with match bookkeeping.
type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

type lineKey struct {
	file string
	line int
}

func check(t *testing.T, p *load.Package, name string, got []analysis.Diagnostic) {
	t.Helper()
	wants := map[lineKey][]*expectation{}
	for _, f := range p.Files {
		collectWants(t, p.Fset, f, wants)
	}
	for _, d := range got {
		pos := p.Fset.Position(d.Pos)
		key := lineKey{pos.Filename, pos.Line}
		matched := false
		for _, w := range wants[key] {
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", name, position(pos), d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic at %s:%d matching %q", name, filepath.Base(key.file), key.line, w.raw)
			}
		}
	}
}

func collectWants(t *testing.T, fset *token.FileSet, f *ast.File, wants map[lineKey][]*expectation) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			for _, q := range wantRe.FindAllString(rest, -1) {
				text := q
				if strings.HasPrefix(q, "`") {
					text = strings.Trim(q, "`")
				} else if u, err := strconv.Unquote(q); err == nil {
					text = u
				}
				re, err := regexp.Compile(text)
				if err != nil {
					t.Fatalf("bad want regexp %q at %s: %v", text, position(pos), err)
				}
				key := lineKey{pos.Filename, pos.Line}
				wants[key] = append(wants[key], &expectation{re: re, raw: text})
			}
		}
	}
}

func position(pos token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
}
