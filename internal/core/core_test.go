package core

import (
	"math"
	"testing"

	"rainshine/internal/cart"
	"rainshine/internal/frame"
	"rainshine/internal/rng"
)

// groupedFrame: rows belong to 3 latent groups defined by (dc, power)
// with distinct target levels.
func groupedFrame(t *testing.T, n int) *frame.Frame {
	t.Helper()
	src := rng.New(21)
	dc := make([]int, n)
	power := make([]float64, n)
	y := make([]float64, n)
	for i := range y {
		dc[i] = src.IntN(2)
		power[i] = []float64{4, 8, 13}[src.IntN(3)]
		switch {
		case dc[i] == 0 && power[i] >= 12:
			y[i] = 10
		case dc[i] == 0:
			y[i] = 5
		default:
			y[i] = 1
		}
		y[i] += src.NormFloat64() * 0.2
	}
	f := frame.New(n)
	if err := f.AddNominalInts("dc", dc, []string{"DC1", "DC2"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("power", power); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("y", y); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestClusterRecoversGroups(t *testing.T) {
	f := groupedFrame(t, 600)
	c, err := Cluster(f, "y", []string{"dc", "power"}, cart.Config{MaxDepth: 4, CP: 0.005}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumClusters() != 3 {
		t.Fatalf("clusters = %d, want 3", c.NumClusters())
	}
	// All rows of a cluster share (roughly) one target level.
	y := f.MustCol("y").Data
	for ci, members := range c.Members {
		if len(members) == 0 {
			t.Fatalf("cluster %d empty", ci)
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range members {
			if y[r] < lo {
				lo = y[r]
			}
			if y[r] > hi {
				hi = y[r]
			}
		}
		if hi-lo > 2 {
			t.Errorf("cluster %d spans %v..%v; groups not homogeneous", ci, lo, hi)
		}
	}
	// Assignment and Members must agree.
	for ci, members := range c.Members {
		for _, r := range members {
			if c.Assignment[r] != ci {
				t.Fatal("Assignment/Members mismatch")
			}
		}
	}
	if c.Importance["dc"] == 0 || c.Importance["power"] == 0 {
		t.Errorf("importance = %v", c.Importance)
	}
	desc, err := c.Describe(0)
	if err != nil || desc == "" {
		t.Errorf("Describe = %q, %v", desc, err)
	}
}

func TestClusterMaxLeaves(t *testing.T) {
	f := groupedFrame(t, 600)
	c, err := Cluster(f, "y", []string{"dc", "power"}, cart.Config{MaxDepth: 6, CP: 0.0001, MinSplit: 4, MinLeaf: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumClusters() > 2 {
		t.Errorf("clusters = %d, want <= 2", c.NumClusters())
	}
}

func TestClusterErrors(t *testing.T) {
	f := groupedFrame(t, 50)
	if _, err := Cluster(f, "nope", []string{"dc"}, cart.Config{}, 0); err == nil {
		t.Error("missing metric should error")
	}
}

func TestMarginalCategorical(t *testing.T) {
	// Confounded SKU-style setup: of=sku (true 2x), covariate dc (2x),
	// placement correlated.
	n := 3000
	src := rng.New(22)
	sku := make([]int, n)
	dc := make([]int, n)
	y := make([]float64, n)
	for i := range y {
		sku[i] = src.IntN(2)
		p := 0.15
		if sku[i] == 1 {
			p = 0.85
		}
		if src.Float64() < p {
			dc[i] = 1
		}
		rate := 1.0
		if sku[i] == 1 {
			rate *= 2
		}
		if dc[i] == 1 {
			rate *= 2
		}
		y[i] = rate + src.NormFloat64()*0.1
	}
	f := frame.New(n)
	if err := f.AddNominalInts("sku", sku, []string{"S4", "S2"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddNominalInts("dc", dc, []string{"DC2", "DC1"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("y", y); err != nil {
		t.Fatal(err)
	}
	res, err := Marginal(f, "y", "sku", []string{"dc"}, cart.Config{MaxDepth: 3, CP: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Effects) != 2 || len(res.PDP) != 2 {
		t.Fatalf("effects = %d, pdp = %d", len(res.Effects), len(res.PDP))
	}
	var s2, s4 float64
	for _, e := range res.Effects {
		if e.Level == "S2" {
			s2 = e.Mean
		} else {
			s4 = e.Mean
		}
	}
	if ratio := s2 / s4; math.Abs(ratio-2) > 0.3 {
		t.Errorf("adjusted ratio = %v, want ~2", ratio)
	}
	if res.Tree == nil {
		t.Error("tree missing from result")
	}
}

func TestMarginalContinuous(t *testing.T) {
	// Continuous variable of interest: only PDP applies, no Effects.
	n := 1000
	src := rng.New(23)
	temp := make([]float64, n)
	dc := make([]int, n)
	y := make([]float64, n)
	for i := range y {
		temp[i] = 56 + src.Float64()*34
		dc[i] = src.IntN(2)
		if dc[i] == 0 && temp[i] > 78 {
			y[i] = 1.5
		} else {
			y[i] = 1.0
		}
		y[i] += src.NormFloat64() * 0.05
	}
	f := frame.New(n)
	if err := f.AddContinuous("temp", temp); err != nil {
		t.Fatal(err)
	}
	if err := f.AddNominalInts("dc", dc, []string{"DC1", "DC2"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("y", y); err != nil {
		t.Fatal(err)
	}
	res, err := Marginal(f, "y", "temp", []string{"dc"}, cart.Config{MaxDepth: 3, CP: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	if res.Effects != nil {
		t.Error("continuous variable should not produce standardized effects")
	}
	if len(res.PDP) < 3 {
		t.Fatalf("PDP points = %d", len(res.PDP))
	}
	// The PDP must rise past 78F.
	var below, above []float64
	for _, p := range res.PDP {
		if p.Value <= 75 {
			below = append(below, p.Effect)
		}
		if p.Value >= 80 {
			above = append(above, p.Effect)
		}
	}
	if len(below) == 0 || len(above) == 0 {
		t.Fatal("PDP grid missed the threshold region")
	}
	if mean(above) <= mean(below) {
		t.Errorf("PDP above 80F (%v) not higher than below 75F (%v)", mean(above), mean(below))
	}
}

func TestMarginalErrors(t *testing.T) {
	f := groupedFrame(t, 100)
	if _, err := Marginal(f, "y", "dc", nil, cart.Config{}); err == nil {
		t.Error("no covariates should error")
	}
	if _, err := Marginal(f, "y", "nope", []string{"dc"}, cart.Config{}); err == nil {
		t.Error("missing variable should error")
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestClusterCV(t *testing.T) {
	f := groupedFrame(t, 600)
	c, err := ClusterCV(f, "y", []string{"dc", "power"}, cart.Config{MaxDepth: 5, MinSplit: 8, MinLeaf: 4}, 10, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The three latent groups are strong signal: CV must keep them.
	if c.NumClusters() < 3 {
		t.Errorf("CV clustering found %d clusters, want >= 3", c.NumClusters())
	}
	if _, err := ClusterCV(f, "nope", []string{"dc"}, cart.Config{}, 10, 5, 1); err == nil {
		t.Error("missing metric should error")
	}
}
