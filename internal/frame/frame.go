// Package frame provides a columnar data frame: the tabular substrate
// that CART, partial dependence, and every figure pipeline consume.
//
// The paper's feature table (Table III) mixes continuous (temperature,
// RH, age), nominal (SKU, workload, DC, rack), and ordinal (day, week,
// month) variables; a Frame carries that type information so the tree
// learner can treat each kind correctly.
//
// Storage is columnar, dense, and physically typed: continuous columns
// hold raw float64 values, and categorical columns with at most 255
// levels hold uint8 level indices into their level table (wider level
// tables fall back to float64 codes). Missing cells are marked by
// per-column null bitmaps (populated by the ingest quarantine/repair
// pipeline) in addition to each layout's in-band sentinel — NaN for
// float64 cells, an out-of-range code for typed ones; see Column.
// Fleet-scale scans iterate the fixed-size chunk views of
// Column.Chunks, whose boundaries never depend on the worker count, so
// chunked fork-join reductions stay byte-identical for every -workers.
package frame

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind classifies a column the way Table III classifies features.
type Kind int

const (
	// Continuous is a numeric feature with meaningful magnitudes
	// (temperature, RH, age, rated power).
	Continuous Kind = iota
	// Nominal is a categorical feature with no implied order (SKU,
	// workload, DC, rack). Values are stored as level indices.
	Nominal
	// Ordinal is a categorical feature with a meaningful order
	// (day-of-week, month). Values are stored as level indices and
	// split like numerics on the level order.
	Ordinal
)

// String returns the Table III type letter for the kind.
func (k Kind) String() string {
	switch k {
	case Continuous:
		return "C"
	case Nominal:
		return "N"
	case Ordinal:
		return "O"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Frame is a collection of equal-length columns.
type Frame struct {
	cols  []Column
	index map[string]int
	rows  int
}

// New creates an empty frame that will hold rows rows.
func New(rows int) *Frame {
	return &Frame{index: make(map[string]int), rows: rows}
}

// NumRows returns the number of rows.
func (f *Frame) NumRows() int { return f.rows }

// NumCols returns the number of columns.
func (f *Frame) NumCols() int { return len(f.cols) }

// Names returns the column names in insertion order.
func (f *Frame) Names() []string {
	out := make([]string, len(f.cols))
	for i, c := range f.cols {
		out[i] = c.Name
	}
	return out
}

// ShallowClone returns a frame with its own column list and name index
// that shares the underlying data slices. Analyses that attach derived
// columns (labels, bins) to a frame other goroutines are reading must
// clone first: adding to the clone leaves the original untouched.
func (f *Frame) ShallowClone() *Frame {
	cl := &Frame{
		cols:  append([]Column(nil), f.cols...),
		index: make(map[string]int, len(f.index)),
		rows:  f.rows,
	}
	for name, i := range f.index {
		cl.index[name] = i
	}
	return cl
}

// AddContinuous appends a continuous column. The data slice is adopted,
// not copied.
func (f *Frame) AddContinuous(name string, data []float64) error {
	return f.add(Column{Name: name, Kind: Continuous, Data: data})
}

// AddOrdinalInts appends an ordinal column from integer codes with the
// given ordered level names.
func (f *Frame) AddOrdinalInts(name string, codes []int, levels []string) error {
	return f.addCoded(name, Ordinal, codes, levels)
}

// AddNominalInts appends a nominal column from integer codes with the
// given level names.
func (f *Frame) AddNominalInts(name string, codes []int, levels []string) error {
	return f.addCoded(name, Nominal, codes, levels)
}

func (f *Frame) addCoded(name string, kind Kind, codes []int, levels []string) error {
	lv := append([]string(nil), levels...)
	if len(lv) <= maxTypedLevels {
		cs := make([]uint8, len(codes))
		for i, c := range codes {
			if c < 0 || c >= len(levels) {
				return fmt.Errorf("frame: column %q code %d out of range [0,%d)", name, c, len(levels))
			}
			cs[i] = uint8(c)
		}
		return f.add(Column{Name: name, Kind: kind, codes: cs, Levels: lv})
	}
	data := make([]float64, len(codes))
	for i, c := range codes {
		if c < 0 || c >= len(levels) {
			return fmt.Errorf("frame: column %q code %d out of range [0,%d)", name, c, len(levels))
		}
		data[i] = float64(c)
	}
	return f.add(Column{Name: name, Kind: kind, Data: data, Levels: lv})
}

// AddNominalCodes appends a nominal column directly from uint8 level
// codes. The codes slice is adopted, not copied, and deliberately not
// range-checked: a code at or above len(levels) is the typed layout's
// in-band missing sentinel, not an error. The level table must fit the
// typed layout (at most 255 levels).
func (f *Frame) AddNominalCodes(name string, codes []uint8, levels []string) error {
	return f.addTyped(name, Nominal, codes, levels)
}

// AddOrdinalCodes appends an ordinal column directly from uint8 level
// codes, with the same adoption and sentinel rules as AddNominalCodes.
func (f *Frame) AddOrdinalCodes(name string, codes []uint8, levels []string) error {
	return f.addTyped(name, Ordinal, codes, levels)
}

func (f *Frame) addTyped(name string, kind Kind, codes []uint8, levels []string) error {
	if len(levels) > maxTypedLevels {
		return fmt.Errorf("frame: column %q has %d levels, typed code columns hold at most %d",
			name, len(levels), maxTypedLevels)
	}
	return f.add(Column{Name: name, Kind: kind, codes: codes, Levels: append([]string(nil), levels...)})
}

// AddColumn appends the column descriptor as-is, sharing its underlying
// cell storage and null bitmap. It is the external spelling of carrying
// an existing column (typically a Clone, or one freshly built) over to
// a derived frame without re-coding through the typed constructors.
func (f *Frame) AddColumn(c Column) error { return f.add(c) }

// AddNominalStrings appends a nominal column from string labels,
// building the level set from the distinct labels in sorted order.
func (f *Frame) AddNominalStrings(name string, labels []string) error {
	set := map[string]bool{}
	for _, l := range labels {
		set[l] = true
	}
	levels := make([]string, 0, len(set))
	for l := range set {
		levels = append(levels, l)
	}
	sort.Strings(levels)
	lookup := make(map[string]int, len(levels))
	for i, l := range levels {
		lookup[l] = i
	}
	codes := make([]int, len(labels))
	for i, l := range labels {
		codes[i] = lookup[l]
	}
	return f.addCoded(name, Nominal, codes, levels)
}

func (f *Frame) add(c Column) error {
	if c.Name == "" {
		return errors.New("frame: empty column name")
	}
	if _, dup := f.index[c.Name]; dup {
		return fmt.Errorf("frame: duplicate column %q", c.Name)
	}
	if c.Data != nil && c.codes != nil {
		return fmt.Errorf("frame: column %q has both float64 and uint8 storage", c.Name)
	}
	if c.Len() != f.rows {
		return fmt.Errorf("frame: column %q has %d rows, frame has %d", c.Name, c.Len(), f.rows)
	}
	f.index[c.Name] = len(f.cols)
	f.cols = append(f.cols, c)
	return nil
}

// Col returns the column with the given name.
func (f *Frame) Col(name string) (*Column, error) {
	i, ok := f.index[name]
	if !ok {
		return nil, fmt.Errorf("frame: no column %q (have %s)", name, strings.Join(f.Names(), ", "))
	}
	return &f.cols[i], nil
}

// MustCol returns the column or panics; for use in tests and internal
// pipelines where the column set is statically known.
func (f *Frame) MustCol(name string) *Column {
	c, err := f.Col(name)
	if err != nil {
		panic(err)
	}
	return c
}

// ColIndex returns the positional index of the named column.
func (f *Frame) ColIndex(name string) (int, error) {
	i, ok := f.index[name]
	if !ok {
		return 0, fmt.Errorf("frame: no column %q", name)
	}
	return i, nil
}

// ColAt returns the column at position i.
func (f *Frame) ColAt(i int) *Column { return &f.cols[i] }

// Select returns a new frame sharing column storage, restricted to the
// named columns in the given order.
func (f *Frame) Select(names ...string) (*Frame, error) {
	out := New(f.rows)
	for _, n := range names {
		c, err := f.Col(n)
		if err != nil {
			return nil, err
		}
		if err := out.add(*c); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Filter returns a new frame containing only rows for which keep returns
// true. Column storage is copied.
func (f *Frame) Filter(keep func(row int) bool) *Frame {
	var rows []int
	for r := 0; r < f.rows; r++ {
		if keep(r) {
			rows = append(rows, r)
		}
	}
	return f.Subset(rows)
}

// Subset returns a new frame with the given row indices (copying data
// and, where present, the per-row null marks).
func (f *Frame) Subset(rows []int) *Frame {
	out := New(len(rows))
	for _, c := range f.cols {
		nc := Column{Name: c.Name, Kind: c.Kind, Levels: c.Levels}
		if c.codes != nil {
			cs := make([]uint8, len(rows))
			for i, r := range rows {
				cs[i] = c.codes[r]
			}
			nc.codes = cs
		} else {
			data := make([]float64, len(rows))
			for i, r := range rows {
				data[i] = c.Data[r]
			}
			nc.Data = data
		}
		if c.nulls.Any() {
			nulls := NewBitmap(len(rows))
			for i, r := range rows {
				if c.nulls.Get(r) {
					nulls.Set(i)
				}
			}
			nc.nulls = nulls
		}
		if err := out.add(nc); err != nil {
			// Unreachable: source frame invariants guarantee validity.
			panic(err)
		}
	}
	return out
}

// Value returns the raw float value at (row, col-name).
func (f *Frame) Value(row int, name string) (float64, error) {
	c, err := f.Col(name)
	if err != nil {
		return 0, err
	}
	if row < 0 || row >= f.rows {
		return 0, fmt.Errorf("frame: row %d out of range [0,%d)", row, f.rows)
	}
	return c.Float(row), nil
}

// GroupMeans computes the mean of the value column within each level of
// a categorical key column. Returned slices are indexed by level.
// Levels with no rows get NaN means and zero counts.
func (f *Frame) GroupMeans(key, value string) (levels []string, means []float64, counts []int, err error) {
	kc, err := f.Col(key)
	if err != nil {
		return nil, nil, nil, err
	}
	if kc.Kind == Continuous {
		return nil, nil, nil, fmt.Errorf("frame: GroupMeans key %q must be categorical", key)
	}
	vc, err := f.Col(value)
	if err != nil {
		return nil, nil, nil, err
	}
	n := len(kc.Levels)
	sums := make([]float64, n)
	counts = make([]int, n)
	for r := 0; r < f.rows; r++ {
		i := kc.Code(r)
		sums[i] += vc.Data[r]
		counts[i]++
	}
	means = make([]float64, n)
	for i := range means {
		if counts[i] == 0 {
			means[i] = math.NaN()
			continue
		}
		means[i] = sums[i] / float64(counts[i])
	}
	return kc.Levels, means, counts, nil
}

// GroupValues collects the value column's entries per level of a
// categorical key column.
func (f *Frame) GroupValues(key, value string) (levels []string, groups [][]float64, err error) {
	kc, err := f.Col(key)
	if err != nil {
		return nil, nil, err
	}
	if kc.Kind == Continuous {
		return nil, nil, fmt.Errorf("frame: GroupValues key %q must be categorical", key)
	}
	vc, err := f.Col(value)
	if err != nil {
		return nil, nil, err
	}
	groups = make([][]float64, len(kc.Levels))
	for r := 0; r < f.rows; r++ {
		i := kc.Code(r)
		groups[i] = append(groups[i], vc.Data[r])
	}
	return kc.Levels, groups, nil
}
