package resilience

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's current disposition.
type BreakerState int

const (
	// Closed admits every attempt (the healthy state).
	Closed BreakerState = iota
	// Open sheds every attempt until the cooldown elapses.
	Open
	// HalfOpen admits a single probe attempt; its outcome decides
	// whether the breaker closes again or reopens.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half_open"
	}
	return "unknown"
}

// Breaker is a consecutive-failure circuit breaker. It trips to Open
// after threshold consecutive recorded failures, sheds every attempt
// for the cooldown, then admits one half-open probe whose outcome
// closes or reopens the circuit. A nil *Breaker admits everything and
// records nothing — the disabled spelling.
//
// Callers pair every admitted Allow with exactly one RecordSuccess,
// RecordFailure, or RecordCanceled. All methods are safe for
// concurrent use.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
	opens    int64
}

// NewBreaker builds a breaker tripping after threshold consecutive
// failures and staying open for cooldown. threshold < 1 returns nil:
// disabled. now is the injected clock; nil means time.Now.
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if threshold < 1 {
		return nil
	}
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether a protected attempt may proceed. Open circuits
// shed with a ShedError whose RetryAfter is the configured cooldown
// (static, so shed bodies are byte-stable); once the cooldown has
// elapsed a single probe is admitted.
func (b *Breaker) Allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return nil
	case Open:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = HalfOpen
			b.probing = true
			return nil
		}
	case HalfOpen:
		if !b.probing {
			b.probing = true
			return nil
		}
	}
	return &ShedError{Reason: BreakerOpen, RetryAfter: retryAfter(b.cooldown)}
}

// RecordSuccess closes the circuit and clears the failure streak.
func (b *Breaker) RecordSuccess() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	b.failures = 0
	b.state = Closed
}

// RecordFailure extends the failure streak, tripping to Open at the
// threshold. A failed half-open probe reopens immediately.
func (b *Breaker) RecordFailure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	b.failures++
	if b.state == HalfOpen || (b.state == Closed && b.failures >= b.threshold) {
		b.state = Open
		b.openedAt = b.now()
		b.opens++
		b.failures = 0
	}
}

// RecordCanceled releases an attempt admitted by Allow without judging
// it: the attempt was abandoned (context canceled), not completed, so
// it must neither extend nor clear the failure streak — but a dangling
// half-open probe must be released or the breaker would never retry.
func (b *Breaker) RecordCanceled() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// State reports the current disposition (advancing Open to HalfOpen is
// left to Allow; State is a pure read).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens reports how many times the circuit has tripped.
func (b *Breaker) Opens() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
