package stream

import (
	"context"
	"encoding/json"
	"math"

	"rainshine/internal/cart"
	"rainshine/internal/envan"
	"rainshine/internal/figures"
	"rainshine/internal/ingest"
)

// Envelope is the canonical study summary: the deterministic JSON a
// batch study and a streamed replay of its log must agree on byte for
// byte. Every field is a pure function of the reconstructed telemetry —
// fleet shape, event and ticket counts, the DataQuality report, and the
// Q3 environmental analysis (thresholds NaN-safe as nullable numbers).
type Envelope struct {
	Seed    uint64 `json:"seed"`
	Days    int    `json:"days"`
	Racks   int    `json:"racks"`
	Servers int    `json:"servers"`
	Events  int    `json:"events"`
	Tickets int    `json:"tickets"`

	Quality *ingest.Report `json:"quality"`

	TempThresholdF  *float64 `json:"temp_threshold_f"`
	RHThreshold     *float64 `json:"rh_threshold"`
	RowsUsed        int      `json:"rows_used"`
	RowsDropped     int      `json:"rows_dropped"`
	DroppedFeatures []string `json:"dropped_features,omitempty"`
	TreeLeaves      int      `json:"tree_leaves"`
}

// nullableFloat maps non-finite values to null (the repo-wide NaN-safe
// JSON idiom, matching finitePtr in rainshine_json.go).
func nullableFloat(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// envelopeCartConfig derives the tree-learner settings from the study
// configuration exactly as the facade's cartConfig does, so the
// envelope's Q3 analysis matches the batch study's.
func envelopeCartConfig(d *figures.Data) cart.Config {
	cfg := cart.Config{Workers: d.Res.Cfg.Workers, Bins: d.Res.Cfg.CARTBins}
	if d.Res.Cfg.CARTExact {
		cfg.Split = cart.SplitExact
	}
	return cfg
}

// BuildEnvelope computes the study envelope for d.
func BuildEnvelope(ctx context.Context, d *figures.Data) (*Envelope, error) {
	f, err := d.RackDays()
	if err != nil {
		return nil, err
	}
	res, err := envan.AnalyzeContext(ctx, f, envelopeCartConfig(d))
	if err != nil {
		return nil, err
	}
	rep, err := d.Quality()
	if err != nil {
		return nil, err
	}
	return &Envelope{
		Seed:            d.Res.Cfg.Seed,
		Days:            d.Res.Days,
		Racks:           len(d.Res.Fleet.Racks),
		Servers:         d.Res.Fleet.TotalServers(),
		Events:          len(d.Res.Events),
		Tickets:         len(d.Res.Tickets),
		Quality:         rep,
		TempThresholdF:  nullableFloat(res.Thresholds.TempF),
		RHThreshold:     nullableFloat(res.Thresholds.RH),
		RowsUsed:        res.RowsUsed,
		RowsDropped:     res.RowsDropped,
		DroppedFeatures: res.DroppedFeatures,
		TreeLeaves:      res.Tree.NumLeaves(),
	}, nil
}

// EnvelopeJSON renders the study envelope as its canonical JSON bytes.
func EnvelopeJSON(ctx context.Context, d *figures.Data) ([]byte, error) {
	env, err := BuildEnvelope(ctx, d)
	if err != nil {
		return nil, err
	}
	// The only float fields are the threshold pointers, boxed through
	// nullableFloat: non-finite values are already null by construction.
	//lint:allow nansafe threshold pointers are boxed finite via nullableFloat
	return json.Marshal(env)
}
