package parsafe_test

import (
	"testing"

	"rainshine/internal/analysis/analysistest"
	"rainshine/internal/analyzers/parsafe"
)

func TestParsafe(t *testing.T) {
	analysistest.Run(t, "testdata", parsafe.Analyzer, "a")
}
