// Package frame is the analysistest twin of rainshine/internal/frame:
// just enough surface for the aliasing rules. The analyzer skips the
// package defining Frame, so nothing here is flagged.
package frame

// Column is one typed dense column with a null bitmap.
type Column struct {
	Name  string
	Data  []float64
	codes []uint8
	nulls []bool
}

// Codes exposes the byte-coded backing array (shared storage).
func (c *Column) Codes() []uint8 { return c.codes }

// MarkNull records a null without disturbing the raw value.
func (c *Column) MarkNull(i int) { c.nulls[i] = true }

// SetMissing records a null and overwrites the cell with NaN.
func (c *Column) SetMissing(i int) { c.MarkNull(i) }

// Clone deep-copies the column, cells and bitmap included.
func (c *Column) Clone() *Column {
	return &Column{Name: c.Name, Data: append([]float64(nil), c.Data...), nulls: append([]bool(nil), c.nulls...)}
}

// Chunk is a half-open row window into a column's storage.
type Chunk struct {
	Lo, Hi int
	col    *Column
}

// MarkNull records a null at chunk-relative index i.
func (ch Chunk) MarkNull(i int) { ch.col.MarkNull(ch.Lo + i) }

// Chunk returns the [lo,hi) window over the column's storage.
func (c *Column) Chunk(lo, hi int) Chunk { return Chunk{Lo: lo, Hi: hi, col: c} }

// Chunks splits the column into fixed-size windows.
func (c *Column) Chunks(rows int) []Chunk {
	return []Chunk{c.Chunk(0, len(c.Data))}
}

// Frame is a column-oriented table.
type Frame struct {
	cols  []Column
	names []string
}

// New returns an empty frame the caller owns.
func New() *Frame {
	return &Frame{}
}

// ShallowClone copies the column directory; the caller may attach
// columns without affecting the original, but cell storage is shared.
func (f *Frame) ShallowClone() *Frame {
	g := New()
	g.names = append(g.names, f.names...)
	g.cols = append(g.cols, f.cols...)
	return g
}

// Subset returns a new frame holding the selected rows (cells copied).
func (f *Frame) Subset(rows []int) *Frame {
	g := New()
	for i := range f.cols {
		c := f.cols[i].Clone()
		g.cols = append(g.cols, *c)
		g.names = append(g.names, c.Name)
	}
	return g
}

// Filter returns a new frame holding the kept rows (cells copied).
func (f *Frame) Filter(keep func(int) bool) *Frame { return f.Subset(nil) }

// Select returns a new frame restricted to the named columns; cell
// storage is shared with the receiver.
func (f *Frame) Select(names ...string) (*Frame, error) {
	g := New()
	g.cols = append(g.cols, f.cols...)
	g.names = append(g.names, f.names...)
	return g, nil
}

// Col returns the named column view.
func (f *Frame) Col(name string) (*Column, error) { return &f.cols[0], nil }

// MustCol returns the named column view or panics.
func (f *Frame) MustCol(name string) *Column { return &f.cols[0] }

// ColAt returns the column view at position i.
func (f *Frame) ColAt(i int) *Column { return &f.cols[i] }

// AddContinuous attaches a float column in place.
func (f *Frame) AddContinuous(name string, data []float64) {
	f.cols = append(f.cols, Column{Name: name, Data: data})
	f.names = append(f.names, name)
}

// AddNominalInts attaches a categorical column in place.
func (f *Frame) AddNominalInts(name string, data []int) {
	vals := make([]float64, len(data))
	for i, v := range data {
		vals[i] = float64(v)
	}
	f.AddContinuous(name, vals)
}

// AddNominalCodes attaches a byte-coded categorical column in place.
func (f *Frame) AddNominalCodes(name string, codes []uint8, levels []string) {
	f.cols = append(f.cols, Column{Name: name, codes: codes})
	f.names = append(f.names, name)
}

// AddOrdinalCodes attaches a byte-coded ordered column in place.
func (f *Frame) AddOrdinalCodes(name string, codes []uint8, levels []string) {
	f.AddNominalCodes(name, codes, levels)
}

// AddColumn attaches a prebuilt column in place, sharing its storage.
func (f *Frame) AddColumn(c Column) {
	f.cols = append(f.cols, c)
	f.names = append(f.names, c.Name)
}
