package ingest

import (
	"math"
	"sort"

	"rainshine/internal/failure"
	"rainshine/internal/ticket"
)

// TicketBounds describe the observation window and fleet extent a
// ticket stream must fit inside. Zero or negative bounds disable the
// corresponding range check (external streams often lack a known fleet).
type TicketBounds struct {
	Days  int
	Racks int
	DCs   int
}

// ValidateTicket classifies one ticket against the taxonomy, returning
// the sentinel error of the first defect found, or nil. Duplicate and
// ordering defects are stream-level and handled by ScrubTickets.
func ValidateTicket(t *ticket.Ticket, b TicketBounds) error {
	if b.Days > 0 && (t.Day < 0 || t.Day >= b.Days) {
		return ErrTicketOutOfRange
	}
	if b.Racks > 0 && (t.Rack < 0 || t.Rack >= b.Racks) {
		return ErrTicketOutOfRange
	}
	if b.DCs > 0 && (t.DC < 0 || t.DC >= b.DCs) {
		return ErrTicketOutOfRange
	}
	if t.Hour < 0 || t.Hour >= 24 || math.IsNaN(t.Hour) {
		return ErrTicketBadHour
	}
	if t.RepairHours < 0 || math.IsNaN(t.RepairHours) || math.IsInf(t.RepairHours, 0) {
		return ErrTicketBadRepair
	}
	if t.Fault < 0 || t.Fault >= ticket.NumFaults {
		return ErrTicketUnknownFault
	}
	return nil
}

// ScrubTickets runs the ticket stage: quarantine invalid records, drop
// exact duplicates, and restore per-device repeat counters that clock
// skew knocked out of time order. The input slice is not modified; the
// returned slice preserves the survivors' original stream order. When
// repair is false the stream is audited — every defect is counted but
// the input is returned unchanged.
func ScrubTickets(ts []ticket.Ticket, b TicketBounds, rep *Report, repair bool) []ticket.Ticket {
	rep.TicketsIn += len(ts)
	kept := make([]ticket.Ticket, 0, len(ts))
	seen := make(map[ticket.Ticket]bool, len(ts))
	for _, t := range ts {
		if err := ValidateTicket(&t, b); err != nil {
			rep.Quarantined[classOfTicketErr(err)]++
			continue
		}
		// Dedup on content: identical in every field but the ID.
		key := t
		key.ID = 0
		if seen[key] {
			rep.Quarantined[DuplicateTicket]++
			continue
		}
		seen[key] = true
		kept = append(kept, t)
	}
	repairRepeats(kept, rep)
	rep.TicketsKept += len(kept)
	if !repair {
		return ts
	}
	return kept
}

// classOfTicketErr maps a per-ticket sentinel back to its class.
func classOfTicketErr(err error) Class {
	switch err {
	case ErrTicketOutOfRange:
		return TicketOutOfRange
	case ErrTicketBadHour:
		return TicketBadHour
	case ErrTicketBadRepair:
		return TicketBadRepair
	default:
		return TicketUnknownFault
	}
}

// repairRepeats restores the RMA re-open counters: within one device's
// ticket group, Repeat must count occurrences in time order. Clock skew
// moves a ticket in time without touching its counter, so an inversion
// (an earlier timestamp carrying a later counter) marks a skewed record.
// Counters are reassigned in time order; clean streams are untouched.
func repairRepeats(ts []ticket.Ticket, rep *Report) {
	type deviceKey struct {
		rack   int
		comp   failure.Component
		device int
	}
	groups := map[deviceKey][]int{}
	for i := range ts {
		if ts[i].Repeat == 0 {
			continue // non-hardware tickets carry no counter
		}
		k := deviceKey{ts[i].Rack, ts[i].Component, ts[i].Device}
		groups[k] = append(groups[k], i)
	}
	for _, idxs := range groups {
		sort.SliceStable(idxs, func(a, b int) bool {
			ta, tb := &ts[idxs[a]], &ts[idxs[b]]
			if ta.Day != tb.Day {
				return ta.Day < tb.Day
			}
			if ta.Hour != tb.Hour {
				return ta.Hour < tb.Hour
			}
			return ta.ID < tb.ID
		})
		for occ, i := range idxs {
			if ts[i].Repeat != occ+1 {
				rep.Repaired[RepeatInversion]++
				ts[i].Repeat = occ + 1
			}
		}
	}
}
