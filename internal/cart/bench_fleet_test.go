package cart

// Fleet-scale bench gates that need engine internals (the binned coding
// pass) or worker-count control, run by `make bench-fleet` /
// `make bench-fleet-multicore` alongside the root harness's
// TestBenchFleet. Shares the BENCH_analysis.json snapshot through
// internal/benchsnap; the -run pattern 'TestBenchFleet' matches both
// packages' gates.

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"testing"

	"rainshine/internal/benchsnap"
	"rainshine/internal/frame"
	"rainshine/internal/rng"
)

// codingBenchFrames builds the factor-heavy coding-pass scenario twice
// at the same cell values: once with typed uint8 code columns, once
// with the legacy float64 layout (constructed explicitly — the frame
// mutators auto-type narrow categoricals now). A few cells carry the
// missing sentinel of each layout so the pass's missing rewrite is
// exercised, not skipped.
func codingBenchFrames(b testing.TB, n, nFactors int) (typed, legacy []*frame.Column) {
	b.Helper()
	src := rng.New(5)
	levels := []string{"l0", "l1", "l2", "l3", "l4", "l5"}
	tf := frame.New(n)
	lf := frame.New(n)
	for fi := 0; fi < nFactors; fi++ {
		name := fmt.Sprintf("f%02d", fi)
		codes := make([]uint8, n)
		floats := make([]float64, n)
		for i := range codes {
			cd := uint8(src.IntN(len(levels)))
			if src.Float64() < 0.01 {
				codes[i] = 255
				floats[i] = -1 // not a level index: reads as missing
				continue
			}
			codes[i] = cd
			floats[i] = float64(cd)
		}
		if err := tf.AddNominalCodes(name, codes, levels); err != nil {
			b.Fatal(err)
		}
		if err := lf.AddColumn(frame.Column{
			Name: name, Kind: frame.Nominal, Data: floats,
			Levels: append([]string(nil), levels...),
		}); err != nil {
			b.Fatal(err)
		}
		typed = append(typed, tf.MustCol(name))
		legacy = append(legacy, lf.MustCol(name))
	}
	return typed, legacy
}

// benchCodingPass measures the binned engine's coding pass — cells to
// per-feature byte-code arrays — over the given columns. The builder is
// prepared once outside the loop so the measurement is the pass itself,
// not the one-time layout allocation.
func benchCodingPass(cols []*frame.Column, n int) func(*testing.B) {
	return func(b *testing.B) {
		bb := &binnedBuilder{cfg: Config{Task: Regression, Workers: 1, Bins: DefaultBins}, ctx: context.Background(), n: n}
		if err := bb.prepare(cols); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := bb.codeFeatures(cols); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// TestBenchFleetCodingPass gates the typed-storage payoff: coding a
// factor-heavy 1M-row frame (32 categorical factors) must be at least
// 2x faster from uint8 code columns than from the legacy float64
// layout. Records coding_pass_1m_typed (gated 15% like-for-like against
// the snapshot) with the float64 twin as its baseline.
func TestBenchFleetCodingPass(t *testing.T) {
	if os.Getenv("RAINSHINE_BENCH_FLEET") == "" {
		t.Skip("RAINSHINE_BENCH_FLEET unset; run via `make bench-fleet`")
	}
	const (
		n        = 1_000_000
		nFactors = 32
		gate     = 0.15
	)
	snapPath := os.Getenv("RAINSHINE_BENCH_SNAP")
	if snapPath == "" {
		snapPath = "../../BENCH_analysis.json"
	}
	recorded, err := benchsnap.Read(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	typed, legacy := codingBenchFrames(t, n, nFactors)
	budget := recorded.Budget("coding_pass_1m_typed", gate)
	tr := benchsnap.MeasureGated(benchCodingPass(typed, n), budget, 5)
	lr := benchsnap.MeasureGated(benchCodingPass(legacy, n), 0, 3)
	if tr.N == 0 || lr.N == 0 {
		t.Fatal("coding-pass benchmarks did not run")
	}
	t.Logf("coding_pass_1m_typed: %v", tr)
	t.Logf("coding_pass_1m_float64: %v", lr)
	speedup := float64(lr.NsPerOp()) / float64(tr.NsPerOp())
	if speedup < 2 {
		t.Errorf("typed coding pass only %.2fx faster than float64 (%d vs %d ns/op), want >=2x",
			speedup, tr.NsPerOp(), lr.NsPerOp())
	}
	if budget > 0 {
		rec := recorded.Results["coding_pass_1m_typed"]
		if ratio := float64(tr.NsPerOp()) / float64(rec.NsPerOp); ratio > 1+gate {
			t.Errorf("coding_pass_1m_typed regressed: %d ns/op vs recorded %d (%+.1f%%, gate +%.0f%%)",
				tr.NsPerOp(), rec.NsPerOp, (ratio-1)*100, gate*100)
		}
	} else if rec, ok := recorded.Results["coding_pass_1m_typed"]; ok && rec.NsPerOp > 0 {
		t.Logf("coding_pass_1m_typed: recorded at gomaxprocs=%d, running at %d; gate skipped (not like-for-like)",
			recorded.Procs(rec), runtime.GOMAXPROCS(0))
	} else {
		t.Log("coding_pass_1m_typed: no recorded result to gate against")
	}
	out := os.Getenv("RAINSHINE_BENCH_OUT")
	if out == "" {
		return
	}
	doc, err := benchsnap.Read(out)
	if err != nil {
		t.Fatal(err)
	}
	doc.Results["coding_pass_1m_typed"] = benchsnap.Of(tr)
	base := benchsnap.Of(lr)
	base.Note = "same 1M x 32-factor coding pass from float64 cells; the typed speedup's comparator"
	doc.Baselines["coding_pass_1m_float64"] = base
	if err := benchsnap.Write(out, doc); err != nil {
		t.Fatalf("writing %s: %v", out, err)
	}
	fmt.Printf("coding-pass bench snapshot merged into %s\n", out)
}

// TestBenchFleetMulticore is the multicore gate: on a runner with at
// least 4 procs, the 1M-row binned fit with Workers=GOMAXPROCS must
// grow a byte-identical tree to the serial fit and beat it by at least
// 2x wall clock. Records cart_fit_1m_binned_multicore (gated 15%
// like-for-like) with the same-box serial run as its baseline. On
// narrower machines the test logs and skips — the speedup cannot be
// demonstrated there, only in CI's multicore job.
func TestBenchFleetMulticore(t *testing.T) {
	if os.Getenv("RAINSHINE_BENCH_FLEET") == "" {
		t.Skip("RAINSHINE_BENCH_FLEET unset; run via `make bench-fleet-multicore`")
	}
	procs := runtime.GOMAXPROCS(0)
	if procs < 4 {
		t.Skipf("multicore gate needs >=4 procs, have %d; the 2x speedup is gated in CI's multicore job", procs)
	}
	const gate = 0.15
	f := benchScenarioFrame(t, 1_000_000)
	fit := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := Fit(f, "y", []string{"x1", "cat"},
					Config{MaxDepth: 6, CP: 0.001, Split: SplitBinned, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	// Byte identity first: the parallel tree must be the serial tree.
	serialTree, err := Fit(f, "y", []string{"x1", "cat"},
		Config{MaxDepth: 6, CP: 0.001, Split: SplitBinned, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parTree, err := Fit(f, "y", []string{"x1", "cat"},
		Config{MaxDepth: 6, CP: 0.001, Split: SplitBinned, Workers: procs})
	if err != nil {
		t.Fatal(err)
	}
	if serialTree.String() != parTree.String() {
		t.Fatal("workers>1 grew a different tree than the serial fit at 1M rows")
	}

	snapPath := os.Getenv("RAINSHINE_BENCH_SNAP")
	if snapPath == "" {
		snapPath = "../../BENCH_analysis.json"
	}
	recorded, err := benchsnap.Read(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	budget := recorded.Budget("cart_fit_1m_binned_multicore", gate)
	par := benchsnap.MeasureGated(fit(procs), budget, 5)
	ser := benchsnap.MeasureGated(fit(1), 0, 3)
	if par.N == 0 || ser.N == 0 {
		t.Fatal("fit benchmarks did not run")
	}
	t.Logf("cart_fit_1m_binned_multicore (workers=%d): %v", procs, par)
	t.Logf("cart_fit_1m_binned serial (same box): %v", ser)
	speedup := float64(ser.NsPerOp()) / float64(par.NsPerOp())
	if speedup < 2 {
		t.Errorf("multicore binned fit only %.2fx faster than serial (%d vs %d ns/op), want >=2x",
			speedup, par.NsPerOp(), ser.NsPerOp())
	}
	if budget > 0 {
		rec := recorded.Results["cart_fit_1m_binned_multicore"]
		if ratio := float64(par.NsPerOp()) / float64(rec.NsPerOp); ratio > 1+gate {
			t.Errorf("cart_fit_1m_binned_multicore regressed: %d ns/op vs recorded %d (%+.1f%%, gate +%.0f%%)",
				par.NsPerOp(), rec.NsPerOp, (ratio-1)*100, gate*100)
		}
	} else if rec, ok := recorded.Results["cart_fit_1m_binned_multicore"]; ok && rec.NsPerOp > 0 {
		t.Logf("cart_fit_1m_binned_multicore: recorded at gomaxprocs=%d, running at %d; gate skipped (not like-for-like)",
			recorded.Procs(rec), procs)
	} else {
		t.Log("cart_fit_1m_binned_multicore: no recorded result to gate against")
	}
	out := os.Getenv("RAINSHINE_BENCH_OUT")
	if out == "" {
		return
	}
	doc, err := benchsnap.Read(out)
	if err != nil {
		t.Fatal(err)
	}
	doc.Results["cart_fit_1m_binned_multicore"] = benchsnap.Of(par)
	base := benchsnap.Of(ser)
	base.Note = "same-box serial binned fit at 1M rows; the multicore speedup's comparator"
	doc.Baselines["cart_fit_1m_binned_serial"] = base
	if err := benchsnap.Write(out, doc); err != nil {
		t.Fatalf("writing %s: %v", out, err)
	}
	fmt.Printf("multicore bench snapshot merged into %s\n", out)
}
