// Spare provisioning (the paper's Q1): how many spare servers must each
// rack of a workload keep to meet its availability SLA?
//
// The example contrasts the three approaches of Section VI — the oracle
// lower bound (LB), the pooled single-factor scheme (SF), and the
// CART-clustered multi-factor scheme (MF) — at daily and hourly
// granularity, and prints the MF clusters with the factor conditions
// that define them.
//
// Run with:
//
//	go run ./examples/spareprovisioning
package main

import (
	"fmt"
	"log"

	"rainshine"
)

func main() {
	study, err := rainshine.NewStudy(
		rainshine.WithSeed(42),
		rainshine.WithDays(540),
		rainshine.WithRacks(160, 140),
	)
	if err != nil {
		log.Fatal(err)
	}

	for _, hourly := range []bool{false, true} {
		rep, err := study.SpareProvisioning(rainshine.W6, hourly)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Workload %s, %s spare pools:\n", rep.Workload, rep.Granularity)
		fmt.Printf("  %-6s %8s %8s %8s %14s\n", "SLA", "LB%", "MF%", "SF%", "TCO saved")
		for i, sla := range rep.SLAs {
			fmt.Printf("  %-6.0f %8.1f %8.1f %8.1f %13.2f%%\n",
				100*sla,
				rep.OverprovPct["LB"][i],
				rep.OverprovPct["MF"][i],
				rep.OverprovPct["SF"][i],
				rep.TCOSavingsPct[i])
		}
		if !hourly {
			fmt.Printf("  factors driving the clusters: %v\n", rep.FactorRanking)
			fmt.Printf("  MF found %d rack groups with distinct spare needs:\n", len(rep.Clusters))
			for i, c := range rep.Clusters {
				fmt.Printf("    group %2d: %3d racks need %5.1f%% spares  (%s)\n",
					i+1, c.Racks, c.ReqPct, c.Conditions)
			}
		}
		fmt.Println()
	}
	fmt.Println("Note how the one-size-fits-all SF fraction is set by the worst rack group,")
	fmt.Println("while MF provisions each group for its own tail — that gap is the savings.")
}
