// Package stream is the continuous-ingestion layer: an append-only,
// CRC-framed log of timestamped fleet telemetry (climate readings,
// hardware failure events, RMA tickets), seeded sources that replay a
// simulation as such a log, and an incremental maintainer that keeps a
// live study current as a watermark closes days.
//
// The paper's pipeline is strictly batch — simulate → ingest → fit —
// but the fleets it models emit telemetry continuously (the Cloud
// Uptime Archive's traces are collected, not dumped). The contract that
// makes streaming safe here is determinism: a study replayed from its
// log is byte-identical to the batch study over the same data, because
// day-close reconstructs the exact batch-order record slices (events
// and tickets each by their batch sequence number) and hands them to
// the same analysis code path.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"rainshine/internal/failure"
	"rainshine/internal/simulate"
	"rainshine/internal/ticket"
)

// math64 / unmath64 move float64 payload fields through their exact bit
// patterns, so NaN readings injected by the fault layer replay
// bit-identically.
func math64(f float64) uint64   { return math.Float64bits(f) }
func unmath64(u uint64) float64 { return math.Float64frombits(u) }

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// Kind tags one record of the stream log.
type Kind uint8

// Record kinds. Values are part of the on-disk format; never renumber.
const (
	// KindClimate is one rack-day sensor reading (temperature, RH).
	KindClimate Kind = 1
	// KindEvent is one hardware device failure (ground-truth telemetry;
	// the rack-day λ frame counts these, so the log must carry them).
	KindEvent Kind = 2
	// KindTicket is one RMA ticket.
	KindTicket Kind = 3
	// KindSeal closes the stream: every remaining day closes and the
	// study is final.
	KindSeal Kind = 4
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindClimate:
		return "climate"
	case KindEvent:
		return "event"
	case KindTicket:
		return "ticket"
	case KindSeal:
		return "seal"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one log entry. Day is the event time that drives the
// watermark; the payload fields used depend on Kind.
type Record struct {
	Kind Kind
	// Day is the observation day the record reports on. For KindSeal it
	// is the day count being sealed (every day < Day closes).
	Day int32
	// Seq is the canonical-order key: the index the event or ticket
	// holds in the batch Result slice. Day-close sorts committed records
	// by Seq, reconstructing the exact batch-order slices regardless of
	// delivery order. (For tickets Seq is deliberately not the ticket
	// ID: the fault injector appends duplicate tickets next to their
	// original under a fresh ID, so batch order is not ID order.)
	// Unused for climate readings (keyed by rack-day) and seals.
	Seq int64

	// Climate payload.
	Rack  int32
	TempF float64
	RH    float64

	// Event payload (Event.Day mirrors Day).
	Event simulate.Event

	// Ticket payload (Ticket.ID mirrors Seq, Ticket.Day mirrors Day).
	Ticket ticket.Ticket
}

// Typed decode errors. Readers surface exactly these (wrapped with
// position context); corrupt input never panics.
var (
	// ErrBadMagic means the log does not start with the format header.
	ErrBadMagic = errors.New("stream: bad log magic")
	// ErrTruncated means the log ends mid-record (a torn write).
	ErrTruncated = errors.New("stream: truncated record")
	// ErrChecksum means a record's payload fails its CRC.
	ErrChecksum = errors.New("stream: record checksum mismatch")
	// ErrTooLarge means a record header claims an implausible length
	// (framing corruption; also bounds decoder allocation).
	ErrTooLarge = errors.New("stream: record too large")
	// ErrBadRecord means a payload's kind or shape is malformed.
	ErrBadRecord = errors.New("stream: malformed record")
)

// Fixed payload sizes per kind (kind byte included). Field values are
// encoded wide (int32/int64/float64) on purpose: the dirty-data mode
// streams corrupted telemetry — NaN readings, out-of-range days, fault
// codes outside the taxonomy — and the log must carry those bytes
// faithfully for replay to reproduce the batch scrub.
const (
	climateSize = 1 + 4 + 4 + 8 + 8
	eventSize   = 1 + 8 + 4 + 4 + 8 + 4 + 8 + 4 + 1
	ticketSize  = 1 + 8 + 4 + 4 + 8 + 4 + 4 + 4 + 1 + 8 + 4 + 4 + 4
	sealSize    = 1 + 4
	maxPayload  = ticketSize
)

// appendPayload encodes r's payload (kind byte first, little-endian
// fields) onto buf.
func appendPayload(buf []byte, r *Record) ([]byte, error) {
	buf = append(buf, byte(r.Kind))
	switch r.Kind {
	case KindClimate:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Rack))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Day))
		buf = binary.LittleEndian.AppendUint64(buf, math64(r.TempF))
		buf = binary.LittleEndian.AppendUint64(buf, math64(r.RH))
	case KindEvent:
		ev := &r.Event
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Seq))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(ev.Rack))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(ev.Day))
		buf = binary.LittleEndian.AppendUint64(buf, math64(ev.Hour))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(ev.Component))
		buf = binary.LittleEndian.AppendUint64(buf, math64(ev.RepairHours))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(ev.Device))
		buf = append(buf, boolByte(ev.Shock))
	case KindTicket:
		t := &r.Ticket
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Seq))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(t.ID))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(t.Day))
		buf = binary.LittleEndian.AppendUint64(buf, math64(t.Hour))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(t.DC))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(t.Rack))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(t.Fault))
		buf = append(buf, boolByte(t.FalsePositive))
		buf = binary.LittleEndian.AppendUint64(buf, math64(t.RepairHours))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(t.Component))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(t.Device))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(t.Repeat))
	case KindSeal:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Day))
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrBadRecord, r.Kind)
	}
	return buf, nil
}

// decodePayload inverts appendPayload. The payload length must exactly
// match the kind's fixed size.
func decodePayload(p []byte) (Record, error) {
	if len(p) == 0 {
		return Record{}, fmt.Errorf("%w: empty payload", ErrBadRecord)
	}
	var r Record
	r.Kind = Kind(p[0])
	var want int
	switch r.Kind {
	case KindClimate:
		want = climateSize
	case KindEvent:
		want = eventSize
	case KindTicket:
		want = ticketSize
	case KindSeal:
		want = sealSize
	default:
		return Record{}, fmt.Errorf("%w: unknown kind %d", ErrBadRecord, p[0])
	}
	if len(p) != want {
		return Record{}, fmt.Errorf("%w: kind %s payload %d bytes, want %d",
			ErrBadRecord, r.Kind, len(p), want)
	}
	b := p[1:]
	switch r.Kind {
	case KindClimate:
		r.Rack = int32(binary.LittleEndian.Uint32(b[0:]))
		r.Day = int32(binary.LittleEndian.Uint32(b[4:]))
		r.TempF = unmath64(binary.LittleEndian.Uint64(b[8:]))
		r.RH = unmath64(binary.LittleEndian.Uint64(b[16:]))
	case KindEvent:
		r.Seq = int64(binary.LittleEndian.Uint64(b[0:]))
		r.Event = simulate.Event{
			Rack:        int32(binary.LittleEndian.Uint32(b[8:])),
			Day:         int32(binary.LittleEndian.Uint32(b[12:])),
			Hour:        unmath64(binary.LittleEndian.Uint64(b[16:])),
			Component:   failure.Component(int32(binary.LittleEndian.Uint32(b[24:]))),
			RepairHours: unmath64(binary.LittleEndian.Uint64(b[28:])),
			Device:      int32(binary.LittleEndian.Uint32(b[36:])),
			Shock:       b[40] != 0,
		}
		r.Day = r.Event.Day
	case KindTicket:
		r.Seq = int64(binary.LittleEndian.Uint64(b[0:]))
		r.Ticket = ticket.Ticket{
			ID:            int(int32(binary.LittleEndian.Uint32(b[8:]))),
			Day:           int(int32(binary.LittleEndian.Uint32(b[12:]))),
			Hour:          unmath64(binary.LittleEndian.Uint64(b[16:])),
			DC:            int(int32(binary.LittleEndian.Uint32(b[24:]))),
			Rack:          int(int32(binary.LittleEndian.Uint32(b[28:]))),
			Fault:         ticket.Fault(int32(binary.LittleEndian.Uint32(b[32:]))),
			FalsePositive: b[36] != 0,
			RepairHours:   unmath64(binary.LittleEndian.Uint64(b[37:])),
			Component:     failure.Component(int32(binary.LittleEndian.Uint32(b[45:]))),
			Device:        int(int32(binary.LittleEndian.Uint32(b[49:]))),
			Repeat:        int(int32(binary.LittleEndian.Uint32(b[53:]))),
		}
		r.Day = int32(r.Ticket.Day)
	case KindSeal:
		r.Day = int32(binary.LittleEndian.Uint32(b[0:]))
	}
	return r, nil
}
