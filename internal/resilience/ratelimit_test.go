package resilience

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestTokenBucketBurstThenRefill(t *testing.T) {
	clk := newFakeClock()
	tb := NewTokenBucket(2, 3, clk.now) // 2 tokens/s, burst 3

	for i := 0; i < 3; i++ {
		if err := tb.Allow(); err != nil {
			t.Fatalf("burst allow %d: %v", i, err)
		}
	}
	err := tb.Allow()
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != RateLimited {
		t.Fatalf("empty bucket = %v, want rate_limited", err)
	}
	if shed.RetryAfter != time.Second {
		t.Errorf("RetryAfter = %s, want 1s floor", shed.RetryAfter)
	}

	// Half a second refills one token at 2/s.
	clk.advance(500 * time.Millisecond)
	if err := tb.Allow(); err != nil {
		t.Fatalf("allow after refill: %v", err)
	}
	if err := tb.Allow(); err == nil {
		t.Fatal("second allow should shed: only one token refilled")
	}

	// A long idle period caps at the burst, not unbounded credit.
	clk.advance(time.Hour)
	for i := 0; i < 3; i++ {
		if err := tb.Allow(); err != nil {
			t.Fatalf("post-idle allow %d: %v", i, err)
		}
	}
	if err := tb.Allow(); err == nil {
		t.Fatal("burst cap exceeded after idle")
	}
}

func TestTokenBucketRetryAfterScalesWithRate(t *testing.T) {
	tb := NewTokenBucket(0.25, 1, newFakeClock().now) // one token per 4s
	tb.Allow()
	err := tb.Allow()
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatal(err)
	}
	if shed.RetryAfter != 4*time.Second {
		t.Errorf("RetryAfter = %s, want 4s (1/rate)", shed.RetryAfter)
	}
}

func TestTokenBucketNilIsUnlimited(t *testing.T) {
	var tb *TokenBucket
	for i := 0; i < 1000; i++ {
		if err := tb.Allow(); err != nil {
			t.Fatalf("nil bucket shed: %v", err)
		}
	}
	if NewTokenBucket(0, 8, nil) != nil {
		t.Error("rate 0 should build a nil (unlimited) bucket")
	}
}
