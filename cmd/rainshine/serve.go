package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rainshine/internal/server"
)

// serveConfig is the parsed form of the serve subcommand's flags.
type serveConfig struct {
	addr    string
	cache   int
	timeout time.Duration
	workers int
	warmup  bool
}

// parseServeFlags parses and validates the serve flags without binding
// a port, so tests can exercise it directly.
func parseServeFlags(args []string) (serveConfig, error) {
	fs := flag.NewFlagSet("rainshine serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cache := fs.Int("cache-size", 4, "max studies held in the registry LRU")
	timeout := fs.Duration("timeout", 5*time.Minute,
		"per-request deadline, including any study build the request triggers")
	workers := fs.Int("workers", 0,
		"worker goroutines per study build and analysis (0 = all CPUs, 1 = serial; results identical)")
	warmup := fs.Bool("warmup", false,
		"pre-materialize every table and figure of each study before publishing it")
	if err := fs.Parse(args); err != nil {
		return serveConfig{}, err
	}
	if rest := fs.Args(); len(rest) > 0 {
		return serveConfig{}, fmt.Errorf("serve takes no positional arguments, got %q", rest)
	}
	if *addr == "" {
		return serveConfig{}, errors.New("-addr must not be empty")
	}
	if *cache < 1 {
		return serveConfig{}, fmt.Errorf("-cache-size must be at least 1, got %d", *cache)
	}
	if *timeout <= 0 {
		return serveConfig{}, fmt.Errorf("-timeout must be positive, got %s", *timeout)
	}
	if *workers < 0 {
		return serveConfig{}, fmt.Errorf("-workers must not be negative, got %d", *workers)
	}
	return serveConfig{
		addr: *addr, cache: *cache, timeout: *timeout,
		workers: *workers, warmup: *warmup,
	}, nil
}

// serveCmd runs the analysis daemon until SIGINT/SIGTERM, then drains
// in-flight requests and exits cleanly.
func serveCmd(args []string) error {
	cfg, err := parseServeFlags(args)
	if err != nil {
		return err
	}
	srv := server.New(server.Config{
		CacheSize: cfg.cache,
		Timeout:   cfg.timeout,
		Workers:   cfg.workers,
		Warmup:    cfg.warmup,
	})
	hs := &http.Server{
		Addr:              cfg.addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "rainshine serve: listening on %s (cache %d studies, timeout %s)\n",
		cfg.addr, cfg.cache, cfg.timeout)

	select {
	case err := <-errc:
		// ListenAndServe only returns early on its own for setup
		// failures (port in use, bad address).
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C force-quits
	fmt.Fprintln(os.Stderr, "rainshine serve: draining in-flight requests...")
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("serve: %w", err)
	}
	snap := srv.Metrics().Snapshot(cfg.cache)
	fmt.Fprintf(os.Stderr, "rainshine serve: done (%d builds, %d cache hits, %d misses)\n",
		snap.Builds.Completed, snap.Cache.Hits, snap.Cache.Misses)
	return nil
}
