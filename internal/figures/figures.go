package figures

import (
	"fmt"
	"math"
	"sort"

	"rainshine/internal/cart"
	"rainshine/internal/envan"
	"rainshine/internal/frame"
	"rainshine/internal/metrics"
	"rainshine/internal/provision"
	"rainshine/internal/skucmp"
	"rainshine/internal/stats"
	"rainshine/internal/tco"
	"rainshine/internal/topology"
)

// BarPoint is one bar of a grouped-rate figure: the mean rack-day
// failure rate of a group with its spread, plus the paper-style
// normalization (relative to the figure's maximum mean).
type BarPoint struct {
	Label      string
	Mean       float64
	StdDev     float64
	Normalized float64
	N          int
}

// CDFSeries is one curve of a CDF figure.
type CDFSeries struct {
	Name string
	X    []float64
	P    []float64
}

// normalizeBars fills the Normalized field relative to the max mean.
func normalizeBars(bars []BarPoint) []BarPoint {
	maxV := 0.0
	for _, b := range bars {
		if b.Mean > maxV {
			maxV = b.Mean
		}
	}
	for i := range bars {
		if maxV > 0 {
			bars[i].Normalized = bars[i].Mean / maxV
		}
	}
	return bars
}

// groupBars summarizes `value` per level of categorical column `key`.
func groupBars(f *frame.Frame, key, value string, keep func(label string) bool) ([]BarPoint, error) {
	levels, groups, err := f.GroupValues(key, value)
	if err != nil {
		return nil, err
	}
	var bars []BarPoint
	for li, lvl := range levels {
		if keep != nil && !keep(lvl) {
			continue
		}
		if len(groups[li]) == 0 {
			continue
		}
		s, err := stats.Summarize(groups[li])
		if err != nil {
			return nil, err
		}
		bars = append(bars, BarPoint{Label: lvl, Mean: s.Mean, StdDev: s.StdDev, N: s.N})
	}
	return normalizeBars(bars), nil
}

// binnedBars summarizes `value` over bins of continuous column `key`.
func binnedBars(f *frame.Frame, key, value string, edges []float64, labels []string) ([]BarPoint, error) {
	kc, err := f.Col(key)
	if err != nil {
		return nil, err
	}
	vc, err := f.Col(value)
	if err != nil {
		return nil, err
	}
	sums, err := stats.GroupedSummary(kc.Data, vc.Data, edges)
	if err != nil {
		return nil, err
	}
	bars := make([]BarPoint, len(sums))
	for i, s := range sums {
		bars[i] = BarPoint{Label: labels[i], Mean: s.Mean, StdDev: s.StdDev, N: s.N}
	}
	return normalizeBars(bars), nil
}

// Fig1 reproduces the illustrative Fig 1: the pooled CDF of per-rack
// spare requirements for a workload versus the CDFs of the two most
// extreme MF clusters, showing why pooled 95th-percentile provisioning
// overshoots.
func (d *Data) Fig1() ([]CDFSeries, error) { return cached(d, "fig1", d.fig1) }

func (d *Data) fig1() ([]CDFSeries, error) {
	sl, err := provision.AnalyzeServerLevel(d.Res, topology.W1, metrics.Daily, nil)
	if err != nil {
		return nil, err
	}
	toSeries := func(name string, fractions []float64) (CDFSeries, error) {
		e, err := stats.NewECDF(fractions)
		if err != nil {
			return CDFSeries{}, err
		}
		xs, ps := e.Points()
		for i := range xs {
			xs[i] *= 100 // percent failed servers
		}
		return CDFSeries{Name: name, X: xs, P: ps}, nil
	}
	pooled, err := toSeries("entire workload", sl.PooledFractions)
	if err != nil {
		return nil, err
	}
	out := []CDFSeries{pooled}
	// Pick the lowest- and highest-mean clusters.
	type cm struct {
		idx  int
		mean float64
	}
	var cms []cm
	for i, fs := range sl.ClusterFractions {
		if len(fs) > 0 {
			cms = append(cms, cm{i, stats.Mean(fs)})
		}
	}
	sort.Slice(cms, func(a, b int) bool { return cms[a].mean < cms[b].mean })
	if len(cms) >= 2 {
		lo, err := toSeries("low-mu group", sl.ClusterFractions[cms[0].idx])
		if err != nil {
			return nil, err
		}
		hi, err := toSeries("high-mu group", sl.ClusterFractions[cms[len(cms)-1].idx])
		if err != nil {
			return nil, err
		}
		out = append(out, lo, hi)
	}
	return out, nil
}

// Fig2 reproduces Fig 2: mean failure rate per DC region.
func (d *Data) Fig2() ([]BarPoint, error) { return cached(d, "fig2", d.fig2) }

func (d *Data) fig2() ([]BarPoint, error) {
	f, err := d.RackDays()
	if err != nil {
		return nil, err
	}
	return groupBars(f, "region", "failures", nil)
}

// SeriesBars is a labelled bar group (one per year for Figs 3-4).
type SeriesBars struct {
	Series string
	Bars   []BarPoint
}

// byTimeAndYear groups the failure rate by an ordinal time column,
// separately for observation years 0 and 1 (2012 and 2013).
func (d *Data) byTimeAndYear(timeCol string) ([]SeriesBars, error) {
	f, err := d.RackDays()
	if err != nil {
		return nil, err
	}
	tc, err := f.Col(timeCol)
	if err != nil {
		return nil, err
	}
	yc, err := f.Col("year")
	if err != nil {
		return nil, err
	}
	vc, err := f.Col("failures")
	if err != nil {
		return nil, err
	}
	var out []SeriesBars
	for year := 0; year < 2; year++ {
		sums := make([]float64, len(tc.Levels))
		counts := make([]int, len(tc.Levels))
		sq := make([]float64, len(tc.Levels))
		for r := 0; r < f.NumRows(); r++ {
			if yc.Code(r) != year {
				continue
			}
			li := tc.Code(r)
			sums[li] += vc.Data[r]
			sq[li] += vc.Data[r] * vc.Data[r]
			counts[li]++
		}
		bars := make([]BarPoint, 0, len(tc.Levels))
		for li, lvl := range tc.Levels {
			if counts[li] == 0 {
				continue
			}
			n := float64(counts[li])
			mean := sums[li] / n
			varr := sq[li]/n - mean*mean
			if varr < 0 {
				varr = 0
			}
			bars = append(bars, BarPoint{Label: lvl, Mean: mean, StdDev: math.Sqrt(varr), N: counts[li]})
		}
		out = append(out, SeriesBars{Series: fmt.Sprintf("%d", 2012+year), Bars: normalizeBars(bars)})
	}
	return out, nil
}

// Fig3 reproduces Fig 3: failure rate by day of week, per year.
func (d *Data) Fig3() ([]SeriesBars, error) { return cached(d, "fig3", d.fig3) }

func (d *Data) fig3() ([]SeriesBars, error) { return d.byTimeAndYear("dow") }

// Fig4 reproduces Fig 4: failure rate by month of year, per year.
func (d *Data) Fig4() ([]SeriesBars, error) { return cached(d, "fig4", d.fig4) }

func (d *Data) fig4() ([]SeriesBars, error) { return d.byTimeAndYear("month") }

// RHEdges are Fig 5's humidity bins: <20, 20-30, ..., >70.
var RHEdges = []float64{0, 20, 30, 40, 50, 60, 70, 101}

// RHLabels label Fig 5's bins.
var RHLabels = []string{"<20", "20-30", "30-40", "40-50", "50-60", "60-70", ">70"}

// Fig5 reproduces Fig 5: failure rate vs relative humidity.
func (d *Data) Fig5() ([]BarPoint, error) { return cached(d, "fig5", d.fig5) }

func (d *Data) fig5() ([]BarPoint, error) {
	f, err := d.RackDays()
	if err != nil {
		return nil, err
	}
	return binnedBars(f, "rh", "failures", RHEdges, RHLabels)
}

// Fig6 reproduces Fig 6: failure rate per workload.
func (d *Data) Fig6() ([]BarPoint, error) { return cached(d, "fig6", d.fig6) }

func (d *Data) fig6() ([]BarPoint, error) {
	f, err := d.RackDays()
	if err != nil {
		return nil, err
	}
	return groupBars(f, "workload", "failures", nil)
}

// Fig7 reproduces Fig 7: failure rate per SKU (the four SKUs the paper
// presents).
func (d *Data) Fig7() ([]BarPoint, error) { return cached(d, "fig7", d.fig7) }

func (d *Data) fig7() ([]BarPoint, error) {
	f, err := d.RackDays()
	if err != nil {
		return nil, err
	}
	keep := map[string]bool{"S1": true, "S2": true, "S3": true, "S4": true}
	return groupBars(f, "sku", "failures", func(l string) bool { return keep[l] })
}

// Fig8 reproduces Fig 8: failure rate per rack power rating.
func (d *Data) Fig8() ([]BarPoint, error) { return cached(d, "fig8", d.fig8) }

func (d *Data) fig8() ([]BarPoint, error) {
	f, err := d.RackDays()
	if err != nil {
		return nil, err
	}
	var bars []BarPoint
	pc, err := f.Col("power_kw")
	if err != nil {
		return nil, err
	}
	vc, err := f.Col("failures")
	if err != nil {
		return nil, err
	}
	groups := map[float64][]float64{}
	for r := 0; r < f.NumRows(); r++ {
		groups[pc.Data[r]] = append(groups[pc.Data[r]], vc.Data[r])
	}
	var ratings []float64
	for p := range groups {
		ratings = append(ratings, p)
	}
	sort.Float64s(ratings)
	for _, p := range ratings {
		s, err := stats.Summarize(groups[p])
		if err != nil {
			return nil, err
		}
		bars = append(bars, BarPoint{Label: fmt.Sprintf("%g", p), Mean: s.Mean, StdDev: s.StdDev, N: s.N})
	}
	return normalizeBars(bars), nil
}

// AgeEdges are Fig 9's equipment-age bins (months).
var AgeEdges = []float64{0, 5, 10, 15, 20, 25, 30, 35, 40, 100}

// AgeLabels label Fig 9's bins.
var AgeLabels = []string{"0-5", "5-10", "10-15", "15-20", "20-25", "25-30", "30-35", "35-40", ">40"}

// Fig9 reproduces Fig 9: failure rate vs equipment age.
func (d *Data) Fig9() ([]BarPoint, error) { return cached(d, "fig9", d.fig9) }

func (d *Data) fig9() ([]BarPoint, error) {
	f, err := d.RackDays()
	if err != nil {
		return nil, err
	}
	return binnedBars(f, "age_months", "failures", AgeEdges, AgeLabels)
}

// OverprovCell is one bar of Figs 10 and 12: an approach's
// over-provisioned capacity percentage at one SLA for one workload.
type OverprovCell struct {
	Workload string
	SLA      float64
	Approach string
	Pct      float64
}

// overprovFigure runs Q1-A for both study workloads at a granularity.
func (d *Data) overprovFigure(g metrics.Granularity) ([]OverprovCell, error) {
	var out []OverprovCell
	for _, wl := range []topology.Workload{topology.W1, topology.W6} {
		sl, err := provision.AnalyzeServerLevel(d.Res, wl, g, nil)
		if err != nil {
			return nil, err
		}
		for i, sla := range sl.SLAs {
			for _, a := range []provision.Approach{provision.LB, provision.MF, provision.SF} {
				out = append(out, OverprovCell{
					Workload: wl.String(),
					SLA:      sla,
					Approach: a.String(),
					Pct:      100 * sl.Overprov[a][i],
				})
			}
		}
	}
	return out, nil
}

// Fig10 reproduces Fig 10: over-provisioning by LB/MF/SF at daily
// granularity.
func (d *Data) Fig10() ([]OverprovCell, error) { return cached(d, "fig10", d.fig10) }

func (d *Data) fig10() ([]OverprovCell, error) { return d.overprovFigure(metrics.Daily) }

// Fig12 reproduces Fig 12: the same at hourly granularity.
func (d *Data) Fig12() ([]OverprovCell, error) { return cached(d, "fig12", d.fig12) }

func (d *Data) fig12() ([]OverprovCell, error) { return d.overprovFigure(metrics.Hourly) }

// ClusterCDFs is one workload's Fig 11 panel.
type ClusterCDFs struct {
	Workload string
	Series   []CDFSeries // SF pooled first, then one per cluster
}

// Fig11 reproduces Fig 11: per-cluster over-provision CDFs for W1 and W6.
func (d *Data) Fig11() ([]ClusterCDFs, error) { return cached(d, "fig11", d.fig11) }

func (d *Data) fig11() ([]ClusterCDFs, error) {
	var out []ClusterCDFs
	for _, wl := range []topology.Workload{topology.W1, topology.W6} {
		sl, err := provision.AnalyzeServerLevel(d.Res, wl, metrics.Daily, nil)
		if err != nil {
			return nil, err
		}
		panel := ClusterCDFs{Workload: wl.String()}
		add := func(name string, fractions []float64) error {
			if len(fractions) == 0 {
				return nil
			}
			e, err := stats.NewECDF(fractions)
			if err != nil {
				return err
			}
			xs, ps := e.Points()
			for i := range xs {
				xs[i] *= 100
			}
			panel.Series = append(panel.Series, CDFSeries{Name: name, X: xs, P: ps})
			return nil
		}
		if err := add("SF", sl.PooledFractions); err != nil {
			return nil, err
		}
		for ci, fs := range sl.ClusterFractions {
			if err := add(fmt.Sprintf("Cluster%d", ci+1), fs); err != nil {
				return nil, err
			}
		}
		out = append(out, panel)
	}
	return out, nil
}

// CostCell is one bar of Fig 13: spare-pool cost as % of fleet cost.
type CostCell struct {
	Workload string
	Scheme   string // "component" or "server"
	Approach string
	Pct      float64
}

// Fig13 reproduces Fig 13: component- vs server-level spare cost at
// 100% availability, daily granularity.
func (d *Data) Fig13() ([]CostCell, error) { return cached(d, "fig13", d.fig13) }

func (d *Data) fig13() ([]CostCell, error) {
	var out []CostCell
	for _, wl := range []topology.Workload{topology.W1, topology.W6} {
		cl, err := provision.AnalyzeComponentLevel(d.Res, wl, metrics.Daily, tco.Default())
		if err != nil {
			return nil, err
		}
		for _, a := range []provision.Approach{provision.LB, provision.MF, provision.SF} {
			out = append(out,
				CostCell{Workload: wl.String(), Scheme: "component", Approach: a.String(), Pct: cl.ComponentCostPct[a]},
				CostCell{Workload: wl.String(), Scheme: "server", Approach: a.String(), Pct: cl.ServerCostPct[a]},
			)
		}
	}
	return out, nil
}

// SKUBar is one bar of Figs 14-15: a SKU's peak or average failure rate,
// normalized to the figure's maximum.
type SKUBar struct {
	SKU        string
	Metric     string // "peak" or "avg"
	Value      float64
	Normalized float64
	StdDev     float64
}

func skuBars(ss []skucmp.Stats) []SKUBar {
	var out []SKUBar
	maxPeak, maxAvg := 0.0, 0.0
	for _, s := range ss {
		if s.Peak > maxPeak {
			maxPeak = s.Peak
		}
		if s.Avg > maxAvg {
			maxAvg = s.Avg
		}
	}
	for _, s := range ss {
		peakN, avgN := 0.0, 0.0
		if maxPeak > 0 {
			peakN = s.Peak / maxPeak
		}
		if maxAvg > 0 {
			avgN = s.Avg / maxAvg
		}
		out = append(out,
			SKUBar{SKU: s.SKU, Metric: "peak", Value: s.Peak, Normalized: peakN, StdDev: s.StdDev},
			SKUBar{SKU: s.SKU, Metric: "avg", Value: s.Avg, Normalized: avgN, StdDev: s.StdDev},
		)
	}
	return out
}

// Fig14 reproduces Fig 14: the SF comparison of S1-S4.
func (d *Data) Fig14() ([]SKUBar, error) { return cached(d, "fig14", d.fig14) }

func (d *Data) fig14() ([]SKUBar, error) {
	f, err := d.RackDays()
	if err != nil {
		return nil, err
	}
	ss, err := skucmp.AnalyzeSF(f, []topology.SKU{topology.S1, topology.S2, topology.S3, topology.S4})
	if err != nil {
		return nil, err
	}
	return skuBars(ss), nil
}

// Fig15 reproduces Fig 15: the MF comparison of the two compute SKUs.
func (d *Data) Fig15() ([]SKUBar, error) { return cached(d, "fig15", d.fig15) }

func (d *Data) fig15() ([]SKUBar, error) {
	f, err := d.RackDays()
	if err != nil {
		return nil, err
	}
	ss, err := skucmp.AnalyzeMF(f, []topology.SKU{topology.S2, topology.S4})
	if err != nil {
		return nil, err
	}
	return skuBars(ss), nil
}

// Fig16 reproduces Fig 16: all-failure rate vs temperature bins.
func (d *Data) Fig16() ([]BarPoint, error) { return cached(d, "fig16", d.fig16) }

func (d *Data) fig16() ([]BarPoint, error) {
	f, err := d.RackDays()
	if err != nil {
		return nil, err
	}
	sums, err := envan.BinnedRates(f, "failures")
	if err != nil {
		return nil, err
	}
	bars := make([]BarPoint, len(sums))
	for i, s := range sums {
		bars[i] = BarPoint{Label: envan.TempBinLabels[i], Mean: s.Mean, StdDev: s.StdDev, N: s.N}
	}
	return normalizeBars(bars), nil
}

// Fig17 reproduces Fig 17: hard-disk failure rate vs temperature bins.
func (d *Data) Fig17() ([]BarPoint, error) { return cached(d, "fig17", d.fig17) }

func (d *Data) fig17() ([]BarPoint, error) {
	f, err := d.RackDays()
	if err != nil {
		return nil, err
	}
	sums, err := envan.BinnedRates(f, "disk_failures")
	if err != nil {
		return nil, err
	}
	bars := make([]BarPoint, len(sums))
	for i, s := range sums {
		bars[i] = BarPoint{Label: envan.TempBinLabels[i], Mean: s.Mean, StdDev: s.StdDev, N: s.N}
	}
	return normalizeBars(bars), nil
}

// EnvGroup is one bar of Fig 18: a DC's disk failure rate in one
// environmental regime, normalized to the hot+dry subgroup mean (the
// paper's normalization).
type EnvGroup struct {
	DC         string
	Group      string
	Mean       float64
	StdDev     float64
	Normalized float64
	N          int
}

// Fig18Result carries the Fig 18 groups plus the thresholds the MF tree
// discovered.
type Fig18Result struct {
	TempThresholdF float64
	RHThreshold    float64
	Groups         []EnvGroup
	Tree           *cart.Tree
}

// Fig18 reproduces Fig 18: HDD failures vs temperature and RH regimes as
// identified by the MF approach.
func (d *Data) Fig18() (*Fig18Result, error) { return cached(d, "fig18", d.fig18) }

func (d *Data) fig18() (*Fig18Result, error) {
	f, err := d.RackDays()
	if err != nil {
		return nil, err
	}
	res, err := envan.Analyze(f, cart.Config{})
	if err != nil {
		return nil, err
	}
	out := &Fig18Result{
		TempThresholdF: res.Thresholds.TempF,
		RHThreshold:    res.Thresholds.RH,
		Tree:           res.Tree,
	}
	// Normalization reference: DC1's hot+dry subgroup mean.
	ref := 0.0
	for _, g := range res.Groups {
		if g.DC == "DC1" && g.HotDry.N > 0 {
			ref = g.HotDry.Mean
		}
	}
	tLbl := fmt.Sprintf("%.1f", out.TempThresholdF)
	rLbl := fmt.Sprintf("%.1f", out.RHThreshold)
	for _, g := range res.Groups {
		cells := []struct {
			name string
			s    stats.Summary
		}{
			{"T<=" + tLbl + "F", g.Cool},
			{"T>" + tLbl + "F", g.Hot},
			{"T>" + tLbl + "+RH<=" + rLbl, g.HotDry},
			{"All", g.All},
		}
		for _, c := range cells {
			norm := 0.0
			if ref > 0 {
				norm = c.s.Mean / ref
			}
			out.Groups = append(out.Groups, EnvGroup{
				DC: g.DC, Group: c.name,
				Mean: c.s.Mean, StdDev: c.s.StdDev, Normalized: norm, N: c.s.N,
			})
		}
	}
	return out, nil
}
