// Package benchgate audits the benchmark-snapshot discipline around
// internal/benchsnap: every mark written into a BENCH_*.json snapshot
// (an assignment through a `Results` map) must
//
//  1. happen inside a TestBench* gate function, so `go test -run
//     TestBench...` replays it;
//  2. be read back by a Budget(...) (or Results[...]) lookup somewhere
//     in the package's tests when the key is a literal — a mark nobody
//     compares against is dead weight that silently rots; and
//  3. have its gate function named in a Makefile bench target, so the
//     snapshot regenerates through `make` rather than folklore.
//
// Baseline writes (`Baselines[...]`) are exempt: baselines are
// recorded once and read by humans. Variable keys skip rule 2 — the
// read cannot be matched textually — but rules 1 and 3 still apply.
//
// The pass works on Pass.TestFiles (syntax-only parses of the
// package's _test.go files) and resolves the Makefile by walking up
// from Pass.Dir, stopping at the module root.
package benchgate

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"rainshine/internal/analysis"
)

// Analyzer is the benchgate pass.
var Analyzer = &analysis.Analyzer{
	Name: "benchgate",
	Doc:  "require every benchmark snapshot mark to be written in a TestBench* gate, read back, and wired into a make bench target",
	Run:  run,
}

// write is one `X.Results[key] = ...` assignment found in a test file.
type write struct {
	pos     token.Pos
	key     string // literal key, or "" for computed keys
	gate    string // enclosing function name
	gatePos token.Pos
}

func run(pass *analysis.Pass) error {
	if len(pass.TestFiles) == 0 {
		return nil
	}
	var writes []write
	reads := map[string]bool{}
	for _, f := range pass.TestFiles {
		collectWrites(f, &writes)
		collectReads(f, reads)
	}
	if len(writes) == 0 {
		return nil
	}
	makefile := findMakefile(pass.Dir)
	for _, w := range writes {
		if !strings.HasPrefix(w.gate, "TestBench") {
			pass.Reportf(w.pos, "benchmark snapshot write outside a TestBench* gate: move it into a TestBench* function so the mark replays under go test")
			continue
		}
		if w.key != "" && !reads[w.key] {
			pass.Reportf(w.pos, "snapshot mark %q is written but never read back: add a Budget(%q, ...) gate so regressions fail a test", w.key, w.key)
		}
		if makefile == "" {
			pass.Reportf(w.pos, "gate %s is not reachable from make: no Makefile found between this package and the module root", w.gate)
		} else if content, err := os.ReadFile(makefile); err != nil || !strings.Contains(string(content), w.gate) {
			pass.Reportf(w.pos, "gate %s is not wired into %s: add it to a bench target so the snapshot regenerates through make", w.gate, filepath.Base(makefile))
		}
	}
	return nil
}

// collectWrites records index-assignments through a Results selector;
// Baselines writes are deliberately ignored.
func collectWrites(f *ast.File, out *[]write) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				sel, ok := ast.Unparen(idx.X).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Results" {
					continue
				}
				*out = append(*out, write{
					pos:     as.Pos(),
					key:     literalKey(idx.Index),
					gate:    fd.Name.Name,
					gatePos: fd.Name.Pos(),
				})
			}
			return true
		})
	}
}

// collectReads records literal keys consumed by Budget("key", ...)
// calls or by Results["key"] lookups outside an assignment's LHS.
func collectReads(f *ast.File, reads map[string]bool) {
	lhs := map[ast.Expr]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, l := range as.Lhs {
				lhs[ast.Unparen(l)] = true
			}
		}
		return true
	})
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if ok && sel.Sel.Name == "Budget" && len(n.Args) >= 1 {
				if k := literalKey(n.Args[0]); k != "" {
					reads[k] = true
				}
			}
		case *ast.IndexExpr:
			if lhs[n] {
				return true
			}
			sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr)
			if ok && sel.Sel.Name == "Results" {
				if k := literalKey(n.Index); k != "" {
					reads[k] = true
				}
			}
		}
		return true
	})
}

func literalKey(e ast.Expr) string {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return ""
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return ""
	}
	return s
}

// findMakefile walks up from dir looking for a Makefile, stopping at
// the module root (the first directory holding go.mod) or the
// filesystem root. Fixture packages carry their own Makefile so the
// walk never escapes the testdata tree into the real repository.
func findMakefile(dir string) string {
	for i := 0; dir != "" && i < 40; i++ {
		mk := filepath.Join(dir, "Makefile")
		if fi, err := os.Stat(mk); err == nil && !fi.IsDir() {
			return mk
		}
		if fi, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil && !fi.IsDir() {
			return ""
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
	return ""
}
