package pdp

import (
	"math"
	"testing"

	"rainshine/internal/cart"
	"rainshine/internal/frame"
	"rainshine/internal/rng"
)

// confoundedFrame builds the canonical Q2 situation: two SKUs where the
// true effect is 2x but SKU "bad" is also placed in the hot DC, which
// doubles rates again, so the naive contrast looks like ~4x.
func confoundedFrame(t *testing.T, n int) *frame.Frame {
	t.Helper()
	src := rng.New(9)
	sku := make([]int, n)
	dc := make([]int, n)
	y := make([]float64, n)
	for i := range y {
		sku[i] = src.IntN(2)
		// SKU 1 ("bad") lands in DC 1 ("hot") 90% of the time;
		// SKU 0 lands there only 10% of the time.
		p := 0.1
		if sku[i] == 1 {
			p = 0.9
		}
		if src.Float64() < p {
			dc[i] = 1
		}
		rate := 1.0
		if sku[i] == 1 {
			rate *= 2 // true SKU effect
		}
		if dc[i] == 1 {
			rate *= 2 // confounder effect
		}
		y[i] = rate + src.NormFloat64()*0.05
	}
	f := frame.New(n)
	if err := f.AddNominalInts("sku", sku, []string{"good", "bad"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddNominalInts("dc", dc, []string{"cool", "hot"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("y", y); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestStandardizeRemovesConfounding(t *testing.T) {
	f := confoundedFrame(t, 4000)
	// Naive contrast is inflated.
	_, naive, _, err := f.GroupMeans("sku", "y")
	if err != nil {
		t.Fatal(err)
	}
	naiveRatio := naive[1] / naive[0]
	if naiveRatio < 3 {
		t.Fatalf("test setup broken: naive ratio = %v, want >3", naiveRatio)
	}
	effects, err := Standardize(f, "y", "sku", []string{"dc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(effects) != 2 {
		t.Fatalf("effects = %+v", effects)
	}
	byLevel := map[string]LevelEffect{}
	for _, e := range effects {
		byLevel[e.Level] = e
	}
	adjRatio := byLevel["bad"].Mean / byLevel["good"].Mean
	if math.Abs(adjRatio-2) > 0.2 {
		t.Errorf("adjusted ratio = %v, want ~2 (naive was %v)", adjRatio, naiveRatio)
	}
	if byLevel["bad"].N == 0 || byLevel["bad"].Strata == 0 {
		t.Errorf("bookkeeping: %+v", byLevel["bad"])
	}
}

func TestStandardizeErrors(t *testing.T) {
	f := confoundedFrame(t, 100)
	if _, err := Standardize(f, "y", "y", []string{"dc"}); err == nil {
		t.Error("continuous variable of interest should error")
	}
	if _, err := Standardize(f, "y", "sku", nil); err == nil {
		t.Error("no covariates should error")
	}
	if _, err := Standardize(f, "y", "sku", []string{"y"}); err == nil {
		t.Error("continuous covariate should error")
	}
	if _, err := Standardize(f, "nope", "sku", []string{"dc"}); err == nil {
		t.Error("missing metric should error")
	}
	if _, err := Standardize(f, "y", "nope", []string{"dc"}); err == nil {
		t.Error("missing variable should error")
	}
	if _, err := Standardize(f, "y", "sku", []string{"nope"}); err == nil {
		t.Error("missing covariate should error")
	}
}

func TestStandardizeNoOverlap(t *testing.T) {
	// Perfect confounding: sku==dc exactly; no stratum has both levels.
	n := 100
	sku := make([]int, n)
	dc := make([]int, n)
	y := make([]float64, n)
	for i := range sku {
		sku[i] = i % 2
		dc[i] = i % 2
		y[i] = float64(i % 2)
	}
	f := frame.New(n)
	if err := f.AddNominalInts("sku", sku, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddNominalInts("dc", dc, []string{"c", "d"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("y", y); err != nil {
		t.Fatal(err)
	}
	if _, err := Standardize(f, "y", "sku", []string{"dc"}); err == nil {
		t.Error("perfectly confounded data should error, not silently return naive answer")
	}
}

func TestComputePDPOnTree(t *testing.T) {
	f := confoundedFrame(t, 4000)
	tree, err := cart.Fit(f, "y", []string{"sku", "dc"}, cart.Config{Task: cart.Regression, MaxDepth: 3, CP: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := Compute(tree, f, "sku", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %+v", pts)
	}
	var good, bad float64
	for _, p := range pts {
		switch p.Label {
		case "good":
			good = p.Effect
		case "bad":
			bad = p.Effect
		}
	}
	// PDP marginalizes over the empirical DC distribution, so the ratio
	// should approach the true 2x, far from the naive ~3.3x.
	ratio := bad / good
	if ratio < 1.6 || ratio > 2.6 {
		t.Errorf("PDP ratio = %v, want ~2", ratio)
	}
}

func TestComputePDPContinuousGrid(t *testing.T) {
	n := 1000
	src := rng.New(4)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = src.Float64() * 100
		if x[i] > 50 {
			y[i] = 1
		}
	}
	f := frame.New(n)
	if err := f.AddContinuous("x", x); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("y", y); err != nil {
		t.Fatal(err)
	}
	tree, err := cart.Fit(f, "y", []string{"x"}, cart.Config{Task: cart.Regression, MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := Compute(tree, f, "x", 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 5 || len(pts) > 11 {
		t.Fatalf("grid size = %d", len(pts))
	}
	// Effect must be (weakly) increasing for this monotone relationship.
	for i := 1; i < len(pts); i++ {
		if pts[i].Effect < pts[i-1].Effect-1e-9 {
			t.Errorf("PDP not monotone at %d: %v -> %v", i, pts[i-1].Effect, pts[i].Effect)
		}
	}
}

func TestComputeErrors(t *testing.T) {
	f := confoundedFrame(t, 200)
	tree, err := cart.Fit(f, "y", []string{"sku"}, cart.Config{Task: cart.Regression})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compute(tree, f, "dc", 0); err == nil {
		t.Error("feature not in tree should error")
	}
	if _, err := Compute(tree, frame.New(0), "sku", 0); err == nil {
		t.Error("frame without columns should error")
	}
}

func TestBinContinuous(t *testing.T) {
	f := frame.New(5)
	if err := f.AddContinuous("t", []float64{55, 61, 66, 71, 80}); err != nil {
		t.Fatal(err)
	}
	name, err := BinContinuous(f, "t", []float64{60, 65, 70, 75})
	if err != nil {
		t.Fatal(err)
	}
	if name != "t_bin" {
		t.Errorf("name = %q", name)
	}
	c := f.MustCol("t_bin")
	// 55 clamps into first bin; 80 clamps into last.
	want := []float64{0, 0, 1, 2, 2}
	for i, w := range want {
		if got := c.Float(i); got != w {
			t.Errorf("bin[%d] = %v, want %v", i, got, w)
		}
	}
	if c.Levels[0] != "60-65" {
		t.Errorf("labels = %v", c.Levels)
	}
}

func TestBinContinuousErrors(t *testing.T) {
	f := frame.New(2)
	if err := f.AddNominalInts("k", []int{0, 1}, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := BinContinuous(f, "k", []float64{0, 1}); err == nil {
		t.Error("categorical input should error")
	}
	if _, err := BinContinuous(f, "nope", []float64{0, 1}); err == nil {
		t.Error("missing column should error")
	}
	if err := f.AddContinuous("x", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := BinContinuous(f, "x", []float64{0}); err == nil {
		t.Error("single edge should error")
	}
}

func TestBinIndexNaN(t *testing.T) {
	if got := binIndex([]float64{0, 1, 2}, math.NaN()); got != 0 {
		t.Errorf("NaN bin = %d", got)
	}
}

func TestPairedContrast(t *testing.T) {
	f := confoundedFrame(t, 3000)
	diffs, err := PairedContrast(f, "y", "sku", "bad", "good", []string{"dc"})
	if err != nil {
		t.Fatal(err)
	}
	// Two DC strata, both observing both SKUs.
	if len(diffs) != 2 {
		t.Fatalf("diffs = %v", diffs)
	}
	// Within each stratum the true SKU effect is +1 (cool) or +2 (hot).
	for _, d := range diffs {
		if d < 0.5 || d > 2.5 {
			t.Errorf("stratum diff %v outside the true effect range", d)
		}
	}
}

func TestPairedContrastErrors(t *testing.T) {
	f := confoundedFrame(t, 200)
	if _, err := PairedContrast(f, "y", "y", "a", "b", []string{"dc"}); err == nil {
		t.Error("continuous variable should error")
	}
	if _, err := PairedContrast(f, "y", "sku", "nope", "good", []string{"dc"}); err == nil {
		t.Error("unknown level should error")
	}
	if _, err := PairedContrast(f, "y", "sku", "bad", "good", nil); err == nil {
		t.Error("no covariates should error")
	}
	if _, err := PairedContrast(f, "y", "sku", "bad", "good", []string{"y"}); err == nil {
		t.Error("continuous covariate should error")
	}
	if _, err := PairedContrast(f, "nope", "sku", "bad", "good", []string{"dc"}); err == nil {
		t.Error("missing metric should error")
	}
	if _, err := PairedContrast(f, "y", "nope", "bad", "good", []string{"dc"}); err == nil {
		t.Error("missing variable should error")
	}
	if _, err := PairedContrast(f, "y", "sku", "bad", "good", []string{"nope"}); err == nil {
		t.Error("missing covariate should error")
	}
}
