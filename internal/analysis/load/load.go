// Package load type-checks packages for the lint suite without any
// dependency on golang.org/x/tools: module-local import paths are
// resolved by walking the repository, standard-library imports are
// type-checked from $GOROOT/src via go/importer's source importer, and
// analysistest fixtures come from per-analyzer testdata/src trees.
//
// Cgo is disabled for the whole load so the pure-Go variants of net and
// friends are selected; nothing in this repository needs cgo and the
// source importer cannot process it.
package load

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and caches packages for one module rooted at RootDir.
type Loader struct {
	// Module is the module path ("rainshine"); imports under it resolve
	// to directories beneath RootDir.
	Module  string
	RootDir string
	// FixtureRoot, when set, is an analysistest testdata/src directory
	// consulted before the module and the standard library.
	FixtureRoot string
	// IncludeTests adds *_test.go files of the target package (used by
	// analysistest fixtures only; the repo driver analyzes production
	// files).
	IncludeTests bool

	Fset *token.FileSet

	ctx  build.Context
	std  types.Importer
	pkgs map[string]*Package
}

// NewLoader returns a loader for the module at rootDir.
func NewLoader(module, rootDir string) *Loader {
	l := &Loader{Module: module, RootDir: rootDir, Fset: token.NewFileSet()}
	l.init()
	return l
}

func (l *Loader) init() {
	// The source importer reads the process-global build context, so
	// cgo must be switched off there for the pure-Go stdlib variants.
	build.Default.CgoEnabled = false
	l.ctx = build.Default
	l.std = importer.ForCompiler(l.Fset, "source", nil)
	l.pkgs = map[string]*Package{}
}

// Load type-checks the package at importPath (and, transitively, its
// imports) and returns it.
func (l *Loader) Load(importPath string) (*Package, error) {
	if l.pkgs == nil {
		l.init()
	}
	if p, ok := l.pkgs[importPath]; ok {
		if p == nil {
			return nil, fmt.Errorf("load: import cycle through %q", importPath)
		}
		return p, nil
	}
	dir, ok := l.resolveDir(importPath)
	if !ok {
		return nil, fmt.Errorf("load: cannot resolve %q below %s", importPath, l.RootDir)
	}
	l.pkgs[importPath] = nil // cycle marker
	p, err := l.loadDir(importPath, dir)
	if err != nil {
		delete(l.pkgs, importPath)
		return nil, err
	}
	l.pkgs[importPath] = p
	return p, nil
}

// resolveDir maps an import path onto a source directory, or reports
// that the path belongs to the standard library.
func (l *Loader) resolveDir(importPath string) (string, bool) {
	if l.FixtureRoot != "" {
		dir := filepath.Join(l.FixtureRoot, filepath.FromSlash(importPath))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
	}
	if importPath == l.Module {
		return l.RootDir, true
	}
	if rel, ok := strings.CutPrefix(importPath, l.Module+"/"); ok {
		return filepath.Join(l.RootDir, filepath.FromSlash(rel)), true
	}
	return "", false
}

// goFiles lists the buildable .go files for dir, honoring build
// constraints via go/build. Test files are excluded unless the loader
// includes them.
func (l *Loader) goFiles(dir string) ([]string, error) {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	if l.IncludeTests {
		names = append(names, bp.TestGoFiles...)
	}
	sort.Strings(names)
	files := make([]string, len(names))
	for i, n := range names {
		files[i] = filepath.Join(dir, n)
	}
	return files, nil
}

func (l *Loader) loadDir(importPath, dir string) (*Package, error) {
	paths, err := l.goFiles(dir)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", importPath, err)
	}
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(l.Fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", importPath, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load %s: no Go files in %s", importPath, dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(l.importFor),
		Sizes:    types.SizesFor("gc", l.ctx.GOARCH),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("load %s: %w", importPath, typeErrs[0])
	}
	return &Package{Path: importPath, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// importFor satisfies types.Importer for packages under analysis:
// fixture and module paths recurse through the loader, everything else
// is the standard library.
func (l *Loader) importFor(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.resolveDir(path); ok {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// ParseTestFiles parses the *_test.go files of dir syntax-only (with
// comments, no type checking) into fset. Analyzers that audit
// test-side artifacts read these through Pass.TestFiles; a directory
// without test files yields nil. Files that fail to parse are skipped:
// the compiler owns test-file syntax errors, not the lint driver.
func ParseTestFiles(fset *token.FileSet, dir string) []*ast.File {
	ctx := build.Default
	ctx.CgoEnabled = false
	bp, err := ctx.ImportDir(dir, 0)
	if err != nil && bp == nil {
		return nil
	}
	names := append(append([]string(nil), bp.TestGoFiles...), bp.XTestGoFiles...)
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err == nil {
			files = append(files, f)
		}
	}
	return files
}

// ModulePackages walks the module below root and returns the import
// paths of every buildable package, skipping testdata, hidden
// directories, and the lint suite's own fixture trees.
func ModulePackages(module, root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		ctx := build.Default
		ctx.CgoEnabled = false
		bp, err := ctx.ImportDir(path, 0)
		if err != nil {
			// A directory without buildable Go files is not a package;
			// anything else (a file whose package clause will not scan,
			// two package names in one directory) must abort the walk
			// loudly — silently skipping it would let `./...` exit 0
			// with the package unanalyzed.
			var noGo *build.NoGoError
			if errors.As(err, &noGo) {
				return nil
			}
			return fmt.Errorf("%s: %w", path, err)
		}
		if len(bp.GoFiles) > 0 {
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			if rel == "." {
				out = append(out, module)
			} else {
				out = append(out, module+"/"+filepath.ToSlash(rel))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}
