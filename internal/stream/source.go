package stream

import (
	"fmt"
	"io"

	"rainshine/internal/simulate"
)

// Records converts a simulation result into the canonical timestamped
// record sequence a live fleet would have emitted: for each observation
// day, the day's sensor readings (rack ascending), then its hardware
// failure events, then its RMA tickets; records whose recorded day lies
// outside the observation window (clock-skewed dirty tickets) follow
// the last day — their impossible dates mean no watermark can admit or
// expire them — and a seal closes the stream.
//
// Every event and ticket carries its batch slice index as Seq, so a
// maintainer replaying the sequence (in this order or any
// chaos-perturbed reordering of it) reconstructs the exact batch-order
// slices at day-close.
func Records(res *simulate.Result) ([]Record, error) {
	if res == nil || res.Climate == nil {
		return nil, fmt.Errorf("stream: nil result")
	}
	days, racks := res.Days, res.Climate.Racks()
	total := racks*days + len(res.Events) + len(res.Tickets) + 1
	out := make([]Record, 0, total)

	// Events and tickets bucketed by in-window day; out-of-window
	// tickets keep batch order in a residual bucket.
	evByDay := make([][]int, days)
	for i, ev := range res.Events {
		d := int(ev.Day)
		if d < 0 || d >= days {
			return nil, fmt.Errorf("stream: event %d day %d outside window [0,%d)", i, d, days)
		}
		evByDay[d] = append(evByDay[d], i)
	}
	tkByDay := make([][]int, days)
	var residual []int
	for i, t := range res.Tickets {
		if t.Day < 0 || t.Day >= days {
			residual = append(residual, i)
			continue
		}
		tkByDay[t.Day] = append(tkByDay[t.Day], i)
	}

	for d := 0; d < days; d++ {
		for ri := 0; ri < racks; ri++ {
			c, err := res.Climate.At(ri, d)
			if err != nil {
				return nil, err
			}
			out = append(out, Record{
				Kind: KindClimate, Rack: int32(ri), Day: int32(d),
				TempF: c.TempF, RH: c.RH,
			})
		}
		for _, i := range evByDay[d] {
			out = append(out, Record{
				Kind: KindEvent, Seq: int64(i), Day: int32(d),
				Event: res.Events[i],
			})
		}
		for _, i := range tkByDay[d] {
			out = append(out, Record{
				Kind: KindTicket, Seq: int64(i), Day: int32(d),
				Ticket: res.Tickets[i],
			})
		}
	}
	for _, i := range residual {
		out = append(out, Record{
			Kind: KindTicket, Seq: int64(i), Day: int32(res.Tickets[i].Day),
			Ticket: res.Tickets[i],
		})
	}
	out = append(out, Record{Kind: KindSeal, Day: int32(days)})
	return out, nil
}

// WriteLog writes a full record sequence as a log on w (magic plus one
// frame per record).
func WriteLog(w io.Writer, recs []Record) error {
	lw, err := NewWriter(w)
	if err != nil {
		return err
	}
	for i := range recs {
		if err := lw.Write(&recs[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteStudyLog renders a simulation result as a complete stream log:
// Records ordering, sealed at the end.
func WriteStudyLog(w io.Writer, res *simulate.Result) error {
	recs, err := Records(res)
	if err != nil {
		return err
	}
	return WriteLog(w, recs)
}
