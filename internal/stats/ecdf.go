package stats

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function over a sample.
// The zero value is not usable; construct with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs. The input is copied.
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// At returns P(X <= x) under the empirical distribution.
func (e *ECDF) At(x float64) float64 {
	// Number of sample points <= x.
	n := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(n) / float64(len(e.sorted))
}

// Quantile returns the smallest sample value v with P(X <= v) >= p.
// This is the inverse-CDF convention used for provisioning: the returned
// requirement is always one of the observed values, so "provision for the
// p-th percentile" is achievable.
func (e *ECDF) Quantile(p float64) float64 {
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	k := int(math.Ceil(p * float64(len(e.sorted))))
	if k < 1 {
		k = 1
	}
	return e.sorted[k-1]
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Min returns the smallest sample value.
func (e *ECDF) Min() float64 { return e.sorted[0] }

// Max returns the largest sample value.
func (e *ECDF) Max() float64 { return e.sorted[len(e.sorted)-1] }

// Points returns (x, F(x)) pairs suitable for plotting the CDF as a step
// function, one point per distinct sample value.
func (e *ECDF) Points() (xs, ps []float64) {
	n := len(e.sorted)
	for i := 0; i < n; {
		j := i
		for j+1 < n && e.sorted[j+1] == e.sorted[i] {
			j++
		}
		xs = append(xs, e.sorted[i])
		ps = append(ps, float64(j+1)/float64(n))
		i = j + 1
	}
	return xs, ps
}
