// Suggested-fix application: the engine behind `rainshinelint -fix`.
// Edits are gathered per file, ordered, checked for overlap, and
// applied to the file bytes in one pass. Applying the fixes for a
// clean tree is a no-op by construction — a second -fix run finds no
// diagnostics and therefore edits nothing — which is what the
// lint-fix-check CI job proves.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// editSpan is one edit resolved to byte offsets within a single file.
type editSpan struct {
	start, end int
	text       []byte
}

// ApplyFixes applies every suggested fix carried by diags to the file
// contents provided by readFile, returning the new content of each
// changed file. Overlapping edits are an analyzer bug and surface as an
// error naming the position.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic, readFile func(string) ([]byte, error)) (map[string][]byte, error) {
	perFile := map[string][]editSpan{}
	for _, d := range diags {
		for _, fix := range d.SuggestedFixes {
			for _, e := range fix.TextEdits {
				if !e.Pos.IsValid() || e.End < e.Pos {
					return nil, fmt.Errorf("invalid text edit in fix %q", fix.Message)
				}
				pos := fset.Position(e.Pos)
				end := fset.Position(e.End)
				if end.Filename != pos.Filename {
					return nil, fmt.Errorf("%s: text edit spans files", pos)
				}
				perFile[pos.Filename] = append(perFile[pos.Filename], editSpan{
					start: pos.Offset, end: end.Offset, text: e.NewText,
				})
			}
		}
	}
	out := map[string][]byte{}
	for name, edits := range perFile {
		src, err := readFile(name)
		if err != nil {
			return nil, err
		}
		fixed, err := applyEdits(src, edits)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out[name] = fixed
	}
	return out, nil
}

// applyEdits rewrites src with the given spans. Identical duplicate
// edits (two diagnostics proposing the same rewrite) collapse to one;
// genuinely overlapping distinct edits are rejected.
func applyEdits(src []byte, edits []editSpan) ([]byte, error) {
	sort.Slice(edits, func(i, j int) bool {
		if edits[i].start != edits[j].start {
			return edits[i].start < edits[j].start
		}
		return edits[i].end < edits[j].end
	})
	var out []byte
	last := 0
	for i, e := range edits {
		if e.start > len(src) || e.end > len(src) {
			return nil, fmt.Errorf("edit at offset %d beyond file size %d", e.start, len(src))
		}
		if i > 0 {
			p := edits[i-1]
			if e.start == p.start && e.end == p.end && string(e.text) == string(p.text) {
				continue
			}
		}
		if e.start < last {
			return nil, fmt.Errorf("overlapping suggested fixes at offset %d", e.start)
		}
		out = append(out, src[last:e.start]...)
		out = append(out, e.text...)
		last = e.end
	}
	out = append(out, src[last:]...)
	return out, nil
}
