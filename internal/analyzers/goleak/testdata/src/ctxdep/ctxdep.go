// Package ctxdep is a goleak fixture dependency: Spin takes a context
// and ignores it, so the pass exports a CtxIgnored fact that package a
// imports across the package boundary.
package ctxdep

import "context"

// Spin busy-works forever, never consulting ctx.
func Spin(ctx context.Context) {
	n := 0
	for n >= 0 {
		n++
	}
}

// Obey honors its context and therefore carries no fact.
func Obey(ctx context.Context) {
	<-ctx.Done()
}
