// Package rng provides deterministic, splittable random number streams
// for the simulator and analyses.
//
// Every stochastic component in this repository draws from a stream
// derived from a single root seed, so a whole experiment is reproducible
// from one integer. Streams are derived by hashing a label, which keeps
// results stable when unrelated components add or remove draws.
package rng

import (
	"hash/fnv"
	"math/rand/v2"
)

// DefaultSeed is the seed used throughout the repository when the caller
// does not specify one. All figures in EXPERIMENTS.md are produced with
// this seed.
const DefaultSeed uint64 = 42

// Source is a deterministic random stream. It wraps math/rand/v2's PCG
// generator and adds labelled splitting.
type Source struct {
	seed uint64
	rand *rand.Rand
}

// New returns a stream rooted at seed.
func New(seed uint64) *Source {
	return &Source{
		seed: seed,
		rand: rand.New(rand.NewPCG(seed, mix(seed))),
	}
}

// Split derives an independent stream from the receiver's seed and a
// label. Splitting is a pure function of (seed, label): it does not
// consume state from the parent, so adding a new consumer never perturbs
// existing streams.
func (s *Source) Split(label string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	child := s.seed ^ h.Sum64()
	return New(child)
}

// SplitIndex derives an independent stream for a numbered sub-entity
// (for example one rack among many).
func (s *Source) SplitIndex(label string, i int) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	var buf [8]byte
	v := uint64(i)
	for b := 0; b < 8; b++ {
		buf[b] = byte(v >> (8 * b))
	}
	_, _ = h.Write(buf[:])
	return New(s.seed ^ h.Sum64())
}

// Rand exposes the underlying *rand.Rand for use with stdlib helpers.
func (s *Source) Rand() *rand.Rand { return s.rand }

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.rand.Float64() }

// NormFloat64 returns a standard normal variate.
func (s *Source) NormFloat64() float64 { return s.rand.NormFloat64() }

// ExpFloat64 returns an Exp(1) variate.
func (s *Source) ExpFloat64() float64 { return s.rand.ExpFloat64() }

// IntN returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand/v2 semantics.
func (s *Source) IntN(n int) int { return s.rand.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (s *Source) Uint64() uint64 { return s.rand.Uint64() }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rand.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rand.Shuffle(n, swap) }

// mix scrambles a seed to provide the second PCG word. SplitMix64
// finalizer, which is a strong 64-bit mixer.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
