package rainshine

// Benchmark harness: one benchmark per paper table and figure (the
// regenerators of EXPERIMENTS.md), plus micro-benchmarks for the
// substrates (simulation, CART fitting, μ extraction).
//
// The per-experiment benchmarks share a single reduced study (the
// simulation is deterministic, so sharing does not couple iterations)
// and measure the cost of regenerating the experiment from raw events.
// Run with:
//
//	go test -bench=. -benchmem

import (
	"sync"
	"testing"

	"rainshine/internal/cart"
	"rainshine/internal/failure"
	"rainshine/internal/frame"
	"rainshine/internal/metrics"
	"rainshine/internal/predict"
	"rainshine/internal/provision"
	"rainshine/internal/repair"
	"rainshine/internal/rng"
	"rainshine/internal/simulate"
	"rainshine/internal/tco"
	"rainshine/internal/topology"
)

var (
	benchOnce  sync.Once
	benchStudy *Study
)

// benchData returns the shared reduced study (120+100 racks, one year).
func benchData(b *testing.B) *Study {
	b.Helper()
	benchOnce.Do(func() {
		s, err := NewStudy(WithSeed(42), WithDays(365), WithRacks(120, 100))
		if err != nil {
			b.Fatal(err)
		}
		benchStudy = s
		// Pre-build the rack-day frame so per-figure benches measure
		// the figure computation, not the shared cache fill.
		if _, err := s.Figures().RackDays(); err != nil {
			b.Fatal(err)
		}
	})
	return benchStudy
}

func benchErr(b *testing.B, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkTableI(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := d.TableI(); len(rows) != 2 {
			b.Fatal("bad TableI")
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := d.TableII(); len(rows) != 11 {
			b.Fatal("bad TableII")
		}
	}
}

func BenchmarkTableIII(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := d.TableIII(); len(rows) == 0 {
			b.Fatal("bad TableIII")
		}
	}
}

func BenchmarkTableIV(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := d.TableIV()
		benchErr(b, err)
		if len(rows) != 12 {
			b.Fatal("bad TableIV")
		}
	}
}

func BenchmarkFig1(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.Fig1()
		benchErr(b, err)
	}
}

func BenchmarkFig2(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.Fig2()
		benchErr(b, err)
	}
}

func BenchmarkFig3(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.Fig3()
		benchErr(b, err)
	}
}

func BenchmarkFig4(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.Fig4()
		benchErr(b, err)
	}
}

func BenchmarkFig5(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.Fig5()
		benchErr(b, err)
	}
}

func BenchmarkFig6(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.Fig6()
		benchErr(b, err)
	}
}

func BenchmarkFig7(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.Fig7()
		benchErr(b, err)
	}
}

func BenchmarkFig8(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.Fig8()
		benchErr(b, err)
	}
}

func BenchmarkFig9(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.Fig9()
		benchErr(b, err)
	}
}

func BenchmarkFig10(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.Fig10()
		benchErr(b, err)
	}
}

func BenchmarkFig11(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.Fig11()
		benchErr(b, err)
	}
}

func BenchmarkFig12(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.Fig12()
		benchErr(b, err)
	}
}

func BenchmarkFig13(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.Fig13()
		benchErr(b, err)
	}
}

func BenchmarkFig14(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.Fig14()
		benchErr(b, err)
	}
}

func BenchmarkFig15(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.Fig15()
		benchErr(b, err)
	}
}

func BenchmarkFig16(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.Fig16()
		benchErr(b, err)
	}
}

func BenchmarkFig17(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.Fig17()
		benchErr(b, err)
	}
}

func BenchmarkFig18(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.Fig18()
		benchErr(b, err)
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkSimulateYear measures generating one year of telemetry for a
// 50-rack fleet (fleet build + climate + events + tickets).
func BenchmarkSimulateYear(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := simulate.Run(simulate.Config{
			Seed:     uint64(i + 1),
			Days:     365,
			Topology: topology.Config{RacksPerDC: [2]int{25, 25}},
		})
		benchErr(b, err)
	}
}

// BenchmarkCARTFit measures fitting a regression tree on 20k rows with
// mixed feature types.
func BenchmarkCARTFit(b *testing.B) {
	src := rng.New(1)
	const n = 20000
	x1 := make([]float64, n)
	cat := make([]int, n)
	y := make([]float64, n)
	for i := range y {
		x1[i] = src.Float64() * 100
		cat[i] = src.IntN(7)
		y[i] = x1[i]*0.01 + float64(cat[i])
	}
	f := frame.New(n)
	benchErr(b, f.AddContinuous("x1", x1))
	benchErr(b, f.AddNominalInts("cat", cat, []string{"a", "b", "c", "d", "e", "f", "g"}))
	benchErr(b, f.AddContinuous("y", y))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := cart.Fit(f, "y", []string{"x1", "cat"}, cart.Config{MaxDepth: 6, CP: 0.001})
		benchErr(b, err)
	}
}

// BenchmarkMuDaily measures extracting per-rack daily μ distributions.
func BenchmarkMuDaily(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := metrics.MuDistributions(s.Figures().Res, []failure.Component{
			failure.Disk, failure.DIMM, failure.ServerOther,
		}, metrics.Daily)
		benchErr(b, err)
	}
}

// BenchmarkMuHourly measures the hourly-granularity variant.
func BenchmarkMuHourly(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := metrics.MuDistributions(s.Figures().Res, []failure.Component{
			failure.Disk, failure.DIMM, failure.ServerOther,
		}, metrics.Hourly)
		benchErr(b, err)
	}
}

// BenchmarkRackDayFrame measures materializing the λ analysis frame.
func BenchmarkRackDayFrame(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := metrics.RackDayFrame(s.Figures().Res)
		benchErr(b, err)
	}
}

// BenchmarkAblationFeatures measures the feature-subset ablation sweep.
func BenchmarkAblationFeatures(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.AblationFeatures()
		benchErr(b, err)
	}
}

// BenchmarkAblationClusterBudget measures the cluster-budget sweep.
func BenchmarkAblationClusterBudget(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.AblationClusterBudget()
		benchErr(b, err)
	}
}

// BenchmarkPredictTrain measures training and evaluating the failure
// predictor on the shared study's rack-day table.
func BenchmarkPredictTrain(b *testing.B) {
	s := benchData(b)
	f, err := s.Figures().RackDays()
	benchErr(b, err)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := predict.Train(f, predict.Config{Balance: true})
		benchErr(b, err)
	}
}

// BenchmarkGranularitySweep measures the provisioning-granularity sweep.
func BenchmarkGranularitySweep(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.GranularitySweep()
		benchErr(b, err)
	}
}

// BenchmarkPooling measures the spare-pooling scope sweep.
func BenchmarkPooling(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := provision.AnalyzePooling(s.Figures().Res, metrics.Daily)
		benchErr(b, err)
	}
}

// BenchmarkRepairPolicy measures the replace-vs-service comparison.
func BenchmarkRepairPolicy(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := repair.Compare(s.Figures().Res, tco.Default(), repair.Params{}, 1)
		benchErr(b, err)
	}
}

// BenchmarkCrossValidate measures 5-fold cp selection on a rack-sized
// regression problem.
func BenchmarkCrossValidate(b *testing.B) {
	src := rng.New(2)
	const n = 300
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range y {
		x[i] = src.Float64() * 10
		if x[i] > 5 {
			y[i] = 1
		}
		y[i] += src.NormFloat64() * 0.3
	}
	f := frame.New(n)
	benchErr(b, f.AddContinuous("x", x))
	benchErr(b, f.AddContinuous("y", y))
	cands := []float64{0.001, 0.01, 0.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := cart.CrossValidate(f, "y", []string{"x"},
			cart.Config{Task: cart.Regression, MaxDepth: 5, MinSplit: 10, MinLeaf: 5}, cands, 5, 1)
		benchErr(b, err)
	}
}
