package faults

import (
	"errors"
	"time"

	"rainshine/internal/rng"
)

// ErrInjectedBuild is the sentinel every chaos-injected build failure
// returns. Its message is deliberately fixed — no attempt numbers, no
// timestamps — so a degraded response that quotes it is byte-stable
// across runs of the same seed.
var ErrInjectedBuild = errors.New("chaos: injected build failure")

// ChaosConfig parameterizes the serving tier's deterministic fault
// plan: which build attempts fail, which requests see latency spikes,
// and which clients drain their responses slowly. Like every injector
// in this package it is seed-driven — the same seed and the same
// attempt/request sequence produce the same faults.
type ChaosConfig struct {
	// Seed roots the chaos decision streams (0 means rng.DefaultSeed).
	Seed uint64
	// BuildFailAfter > 0 fails every build attempt after the Nth per
	// study key: attempt 1..N succeed, N+1.. fail. This is the
	// structural knob the soak test uses — it guarantees a last-good
	// study exists before failures start, independent of scheduling.
	BuildFailAfter int
	// BuildFailRate is the per-attempt probability of an injected build
	// failure, decided deterministically per (seed, key, attempt).
	BuildFailRate float64
	// LatencyRate is the per-request probability of an injected latency
	// spike, uniform in (0, LatencySpike].
	LatencyRate  float64
	LatencySpike time.Duration
	// SlowClientRate is the per-request probability that the response
	// body drains in SlowChunk-byte writes with SlowDelay pauses — the
	// slow-client (trickle-read) simulation.
	SlowClientRate float64
	SlowChunk      int
	SlowDelay      time.Duration
}

// DefaultChaos is the fault mix behind the serve daemon's -chaos flag:
// every class enabled at rates that keep the daemon mostly available
// while exercising all degradation paths.
func DefaultChaos(seed uint64) ChaosConfig {
	return ChaosConfig{
		Seed:           seed,
		BuildFailRate:  0.2,
		LatencyRate:    0.1,
		LatencySpike:   150 * time.Millisecond,
		SlowClientRate: 0.05,
		SlowChunk:      512,
		SlowDelay:      2 * time.Millisecond,
	}
}

// Enabled reports whether any chaos class is active.
func (c ChaosConfig) Enabled() bool {
	return c.BuildFailAfter > 0 || c.BuildFailRate > 0 ||
		c.LatencyRate > 0 || c.SlowClientRate > 0
}

// Chaos makes the fault plan's per-attempt and per-request decisions.
// Every decision derives a fresh labelled stream from the root seed
// (rng.Source.Split is a pure function of seed and label, consuming no
// shared state), so Chaos is safe for concurrent use and a decision
// depends only on (seed, key, attempt) or (seed, sequence number) —
// never on goroutine interleaving.
type Chaos struct {
	cfg ChaosConfig
	src *rng.Source
}

// NewChaos builds the decision-maker for cfg.
func NewChaos(cfg ChaosConfig) *Chaos {
	seed := cfg.Seed
	if seed == 0 {
		seed = rng.DefaultSeed
	}
	if cfg.SlowChunk < 1 {
		cfg.SlowChunk = 512
	}
	if cfg.SlowDelay <= 0 {
		cfg.SlowDelay = time.Millisecond
	}
	return &Chaos{cfg: cfg, src: rng.New(seed).Split("chaos")}
}

// BuildFault decides whether build attempt n (1-based) for the study
// key fails, returning ErrInjectedBuild when it does.
func (c *Chaos) BuildFault(key string, attempt int) error {
	if c == nil {
		return nil
	}
	if c.cfg.BuildFailAfter > 0 && attempt > c.cfg.BuildFailAfter {
		return ErrInjectedBuild
	}
	if c.cfg.BuildFailRate > 0 {
		s := c.src.Split("build:"+key).SplitIndex("attempt", attempt)
		if s.Float64() < c.cfg.BuildFailRate {
			return ErrInjectedBuild
		}
	}
	return nil
}

// Latency returns the injected delay for request seq, zero for most.
func (c *Chaos) Latency(seq uint64) time.Duration {
	if c == nil || c.cfg.LatencyRate <= 0 || c.cfg.LatencySpike <= 0 {
		return 0
	}
	s := c.src.Split("latency").SplitIndex("req", int(seq))
	if s.Float64() >= c.cfg.LatencyRate {
		return 0
	}
	// (0, LatencySpike]: a selected request always stalls a little.
	return time.Duration((1 - s.Float64()) * float64(c.cfg.LatencySpike))
}

// SlowClient decides whether request seq drains its response slowly,
// returning the chunk size and per-chunk delay when it does.
func (c *Chaos) SlowClient(seq uint64) (chunk int, delay time.Duration, ok bool) {
	if c == nil || c.cfg.SlowClientRate <= 0 {
		return 0, 0, false
	}
	s := c.src.Split("slowclient").SplitIndex("req", int(seq))
	if s.Float64() >= c.cfg.SlowClientRate {
		return 0, 0, false
	}
	return c.cfg.SlowChunk, c.cfg.SlowDelay, true
}
