package rainshine

// Benchmark harness: one benchmark per paper table and figure (the
// regenerators of EXPERIMENTS.md), plus micro-benchmarks for the
// substrates (simulation, CART fitting, μ extraction).
//
// The per-experiment benchmarks share a single reduced study (the
// simulation is deterministic, so sharing does not couple iterations)
// and measure the cost of regenerating the experiment from raw events;
// the figure memo is off by default, so every iteration does real work.
// Run with:
//
//	go test -bench=. -benchmem
//
// `make bench` additionally runs TestBenchAnalysis, which snapshots
// ns/op and allocs/op for the hot analyses to BENCH_analysis.json
// (RAINSHINE_BENCH_OUT) for regression tracking.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"rainshine/internal/benchsnap"
	"rainshine/internal/cart"
	"rainshine/internal/failure"
	"rainshine/internal/figures"
	"rainshine/internal/frame"
	"rainshine/internal/metrics"
	"rainshine/internal/predict"
	"rainshine/internal/provision"
	"rainshine/internal/repair"
	"rainshine/internal/rng"
	"rainshine/internal/simulate"
	"rainshine/internal/tco"
	"rainshine/internal/topology"
)

var (
	benchOnce  sync.Once
	benchStudy *Study
)

// benchData returns the shared reduced study (120+100 racks, one year).
func benchData(b testing.TB) *Study {
	b.Helper()
	benchOnce.Do(func() {
		s, err := NewStudy(WithSeed(42), WithDays(365), WithRacks(120, 100))
		if err != nil {
			b.Fatal(err)
		}
		benchStudy = s
		// Pre-build the rack-day frame so per-figure benches measure
		// the figure computation, not the shared cache fill.
		if _, err := s.Figures().RackDays(); err != nil {
			b.Fatal(err)
		}
	})
	return benchStudy
}

func benchErr(b testing.TB, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
}

// benchFig adapts a figure regenerator to the common error signature.
func benchFig[T any](fn func(*figures.Data) (T, error)) func(*figures.Data) error {
	return func(d *figures.Data) error {
		_, err := fn(d)
		return err
	}
}

// figureBenches drives BenchmarkFigures and BenchmarkFigureRegen: every
// paper table and figure with its sanity check.
var figureBenches = []struct {
	name string
	fn   func(*figures.Data) error
}{
	{"TableI", func(d *figures.Data) error {
		if len(d.TableI()) != 2 {
			return errors.New("bad TableI")
		}
		return nil
	}},
	{"TableII", func(d *figures.Data) error {
		if len(d.TableII()) != 11 {
			return errors.New("bad TableII")
		}
		return nil
	}},
	{"TableIII", func(d *figures.Data) error {
		if len(d.TableIII()) == 0 {
			return errors.New("bad TableIII")
		}
		return nil
	}},
	{"TableIV", func(d *figures.Data) error {
		rows, err := d.TableIV()
		if err == nil && len(rows) != 12 {
			err = errors.New("bad TableIV")
		}
		return err
	}},
	{"Fig1", benchFig((*figures.Data).Fig1)},
	{"Fig2", benchFig((*figures.Data).Fig2)},
	{"Fig3", benchFig((*figures.Data).Fig3)},
	{"Fig4", benchFig((*figures.Data).Fig4)},
	{"Fig5", benchFig((*figures.Data).Fig5)},
	{"Fig6", benchFig((*figures.Data).Fig6)},
	{"Fig7", benchFig((*figures.Data).Fig7)},
	{"Fig8", benchFig((*figures.Data).Fig8)},
	{"Fig9", benchFig((*figures.Data).Fig9)},
	{"Fig10", benchFig((*figures.Data).Fig10)},
	{"Fig11", benchFig((*figures.Data).Fig11)},
	{"Fig12", benchFig((*figures.Data).Fig12)},
	{"Fig13", benchFig((*figures.Data).Fig13)},
	{"Fig14", benchFig((*figures.Data).Fig14)},
	{"Fig15", benchFig((*figures.Data).Fig15)},
	{"Fig16", benchFig((*figures.Data).Fig16)},
	{"Fig17", benchFig((*figures.Data).Fig17)},
	{"Fig18", benchFig((*figures.Data).Fig18)},
}

// BenchmarkFigures runs one sub-benchmark per paper table and figure
// (select one with e.g. -bench=Figures/Fig7).
func BenchmarkFigures(b *testing.B) {
	d := benchData(b).Figures()
	for _, fb := range figureBenches {
		b.Run(fb.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchErr(b, fb.fn(d))
			}
		})
	}
}

// BenchmarkFigureRegen measures regenerating the complete set of paper
// tables and figures once — the serve daemon's warmup workload on a
// cold cache.
func BenchmarkFigureRegen(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, fb := range figureBenches {
			benchErr(b, fb.fn(d))
		}
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkSimulateYear measures generating one year of telemetry for a
// 50-rack fleet (fleet build + climate + events + tickets).
func BenchmarkSimulateYear(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := simulate.Run(simulate.Config{
			Seed:     uint64(i + 1),
			Days:     365,
			Topology: topology.Config{RacksPerDC: [2]int{25, 25}},
		})
		benchErr(b, err)
	}
}

// cartBenchFrame builds the reference CART scenario at the given row
// count: one continuous driver, one 7-level nominal, additive response.
// The same generator serves the 20k and fleet-scale (1M) benchmarks so
// their numbers are comparable.
func cartBenchFrame(b testing.TB, n int) *frame.Frame {
	b.Helper()
	src := rng.New(1)
	x1 := make([]float64, n)
	cat := make([]int, n)
	y := make([]float64, n)
	for i := range y {
		x1[i] = src.Float64() * 100
		cat[i] = src.IntN(7)
		y[i] = x1[i]*0.01 + float64(cat[i])
	}
	f := frame.New(n)
	benchErr(b, f.AddContinuous("x1", x1))
	benchErr(b, f.AddNominalInts("cat", cat, []string{"a", "b", "c", "d", "e", "f", "g"}))
	benchErr(b, f.AddContinuous("y", y))
	return f
}

// BenchmarkCARTFit measures fitting a regression tree on 20k rows with
// mixed feature types (exact engine: 20k is below cart.AutoBinRows).
func BenchmarkCARTFit(b *testing.B) {
	f := cartBenchFrame(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := cart.Fit(f, "y", []string{"x1", "cat"}, cart.Config{MaxDepth: 6, CP: 0.001})
		benchErr(b, err)
	}
}

// BenchmarkCARTFit1MBinned measures the same scenario at fleet scale:
// one million rows, which SplitAuto routes through the histogram-binned
// engine. Recorded as cart_fit_1m_binned by `make bench-fleet`.
func BenchmarkCARTFit1MBinned(b *testing.B) {
	f := cartBenchFrame(b, 1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := cart.Fit(f, "y", []string{"x1", "cat"}, cart.Config{MaxDepth: 6, CP: 0.001})
		benchErr(b, err)
	}
}

// benchCARTFit1MExact is the exact-engine counterpart at 1M rows, run
// only through TestBenchFleet (it takes ~1s per iteration, so it stays
// out of the -bench=. sweep) to record the cart_fit_1m_exact baseline
// the binned speedup is judged against.
func benchCARTFit1MExact(b *testing.B) {
	f := cartBenchFrame(b, 1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := cart.Fit(f, "y", []string{"x1", "cat"},
			cart.Config{MaxDepth: 6, CP: 0.001, Split: cart.SplitExact})
		benchErr(b, err)
	}
}

// --- incremental refit (streaming) benchmarks ---

// refitBenchData generates the streaming-refit scenario at the
// cart_fit_20k scale: a 20k-row accumulated history plus one streamed
// day whose feature distribution drifted (x1 concentrated high), so the
// refit is a real drift refit rather than a stats refresh. The same
// mixed schema as cartBenchFrame keeps the numbers comparable.
func refitBenchData() (base [][]float64, baseY []float64, day [][]float64, dayY []float64) {
	src := rng.New(3)
	mk := func(n int, lo, span float64) ([][]float64, []float64) {
		rows := make([][]float64, n)
		y := make([]float64, n)
		for i := range rows {
			x1 := lo + src.Float64()*span
			cat := float64(src.IntN(7))
			rows[i] = []float64{x1, cat}
			y[i] = x1*0.01 + cat
		}
		return rows, y
	}
	base, baseY = mk(20000, 0, 100)
	day, dayY = mk(250, 60, 40)
	return base, baseY, day, dayY
}

func newBenchRefitter(b testing.TB) *cart.Refitter {
	b.Helper()
	r, err := cart.NewRefitter("y", []cart.Feature{
		{Name: "x1", Kind: frame.Continuous},
		{Name: "cat", Kind: frame.Nominal, Levels: []string{"a", "b", "c", "d", "e", "f", "g"}},
	}, nil, cart.RefitConfig{
		Config: cart.Config{MaxDepth: 6, CP: 0.001, Workers: 1, Split: cart.SplitExact},
	})
	benchErr(b, err)
	return r
}

// BenchmarkIncrementalRefit20k measures bringing a fitted 20k-row tree
// current after one streamed day of drifted rows — the live maintainer's
// steady-state cost. The fitted base state is rebuilt outside the timer
// each iteration; only the day's Append (merge into presorted orders)
// plus Refit is measured. Recorded as incremental_refit_20k by
// `make stream-replay`.
func BenchmarkIncrementalRefit20k(b *testing.B) {
	base, baseY, day, dayY := refitBenchData()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r := newBenchRefitter(b)
		benchErr(b, r.Append(base, baseY))
		_, err := r.Refit(ctx)
		benchErr(b, err)
		b.StartTimer()
		benchErr(b, r.Append(day, dayY))
		_, err = r.Refit(ctx)
		benchErr(b, err)
	}
}

// BenchmarkFullRefit20k is the comparator: rebuild the model from
// scratch over the identical 20k+day history, the cost a batch pipeline
// pays on every day-close. The incremental path must beat this
// (TestBenchStreamRefit enforces it).
func BenchmarkFullRefit20k(b *testing.B) {
	base, baseY, day, dayY := refitBenchData()
	all := append(append([][]float64{}, base...), day...)
	allY := append(append([]float64{}, baseY...), dayY...)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := newBenchRefitter(b)
		benchErr(b, r.Append(all, allY))
		_, err := r.Refit(ctx)
		benchErr(b, err)
	}
}

// BenchmarkMuDaily measures extracting per-rack daily μ distributions.
func BenchmarkMuDaily(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := metrics.MuDistributions(s.Figures().Res, []failure.Component{
			failure.Disk, failure.DIMM, failure.ServerOther,
		}, metrics.Daily)
		benchErr(b, err)
	}
}

// BenchmarkMuHourly measures the hourly-granularity variant.
func BenchmarkMuHourly(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := metrics.MuDistributions(s.Figures().Res, []failure.Component{
			failure.Disk, failure.DIMM, failure.ServerOther,
		}, metrics.Hourly)
		benchErr(b, err)
	}
}

// BenchmarkRackDayFrame measures materializing the λ analysis frame.
func BenchmarkRackDayFrame(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := metrics.RackDayFrame(s.Figures().Res)
		benchErr(b, err)
	}
}

// BenchmarkClimateGuidance measures the full Q3 pipeline on the shared
// study: MF fit, baseline fit, residual environment tree, hot-regime RH
// scan, PDP grids, and per-DC group rates.
func BenchmarkClimateGuidance(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := s.ClimateGuidance()
		benchErr(b, err)
	}
}

// BenchmarkAblationFeatures measures the feature-subset ablation sweep.
func BenchmarkAblationFeatures(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.AblationFeatures()
		benchErr(b, err)
	}
}

// BenchmarkAblationClusterBudget measures the cluster-budget sweep.
func BenchmarkAblationClusterBudget(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.AblationClusterBudget()
		benchErr(b, err)
	}
}

// BenchmarkPredictTrain measures training and evaluating the failure
// predictor on the shared study's rack-day table.
func BenchmarkPredictTrain(b *testing.B) {
	s := benchData(b)
	f, err := s.Figures().RackDays()
	benchErr(b, err)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := predict.Train(f, predict.Config{Balance: true})
		benchErr(b, err)
	}
}

// BenchmarkGranularitySweep measures the provisioning-granularity sweep.
func BenchmarkGranularitySweep(b *testing.B) {
	d := benchData(b).Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.GranularitySweep()
		benchErr(b, err)
	}
}

// BenchmarkPooling measures the spare-pooling scope sweep.
func BenchmarkPooling(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := provision.AnalyzePooling(s.Figures().Res, metrics.Daily)
		benchErr(b, err)
	}
}

// BenchmarkRepairPolicy measures the replace-vs-service comparison.
func BenchmarkRepairPolicy(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := repair.Compare(s.Figures().Res, tco.Default(), repair.Params{}, 1)
		benchErr(b, err)
	}
}

// BenchmarkCrossValidate measures 5-fold cp selection on a rack-sized
// regression problem.
func BenchmarkCrossValidate(b *testing.B) {
	src := rng.New(2)
	const n = 300
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range y {
		x[i] = src.Float64() * 10
		if x[i] > 5 {
			y[i] = 1
		}
		y[i] += src.NormFloat64() * 0.3
	}
	f := frame.New(n)
	benchErr(b, f.AddContinuous("x", x))
	benchErr(b, f.AddContinuous("y", y))
	cands := []float64{0.001, 0.01, 0.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := cart.CrossValidate(f, "y", []string{"x"},
			cart.Config{Task: cart.Regression, MaxDepth: 5, MinSplit: 10, MinLeaf: 5}, cands, 5, 1)
		benchErr(b, err)
	}
}

// --- regression snapshot ---
//
// The snapshot schema and merge/gate helpers live in
// internal/benchsnap, shared with the bench-gating tests inside
// internal/cart (coding pass, multicore fit). Every fresh measurement
// carries the GOMAXPROCS it ran under, and gates only fire when the
// recorded entry was measured at the same parallelism (Doc.Budget).

// prePresortBaselines returns the serial numbers recorded at commit
// e2fc823, before the presorted exact engine landed. The harness of
// that era did not persist iteration counts, so n stays 0 with a note
// saying why — the numbers themselves remain the before/after record.
func prePresortBaselines() map[string]benchsnap.Result {
	const note = "pre-presort engine, commit e2fc823; harness predated n persistence"
	return map[string]benchsnap.Result{
		"pre_presort_cart_fit_20k":        {NsPerOp: 15598789, BytesPerOp: 3341797, AllocsPerOp: 632, Note: note},
		"pre_presort_cart_crossvalidate":  {NsPerOp: 769345, BytesPerOp: 357633, AllocsPerOp: 2051, Note: note},
		"pre_presort_q3_climate_guidance": {NsPerOp: 352200698, BytesPerOp: 67588568, AllocsPerOp: 7457, Note: note},
	}
}

// TestBenchAnalysis snapshots the hot-path benchmarks (CART fit,
// cross-validation, the Q3 pipeline, figure regeneration, predictor
// training) to the JSON file named by RAINSHINE_BENCH_OUT, so `make
// bench` leaves a committed record that regressions diff against. Skipped
// when the variable is unset.
func TestBenchAnalysis(t *testing.T) {
	out := os.Getenv("RAINSHINE_BENCH_OUT")
	if out == "" {
		t.Skip("RAINSHINE_BENCH_OUT unset; run via `make bench`")
	}
	marks := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"cart_fit_20k", BenchmarkCARTFit},
		{"cart_crossvalidate", BenchmarkCrossValidate},
		{"q3_climate_guidance", BenchmarkClimateGuidance},
		{"figure_regen", BenchmarkFigureRegen},
		{"predict_train", BenchmarkPredictTrain},
	}
	doc, err := benchsnap.Read(out)
	if err != nil {
		t.Fatal(err)
	}
	for name, base := range prePresortBaselines() {
		doc.Baselines[name] = base
	}
	for _, m := range marks {
		r := testing.Benchmark(m.fn)
		if r.N == 0 {
			t.Fatalf("%s: benchmark did not run", m.name)
		}
		doc.Results[m.name] = benchsnap.Of(r)
		t.Logf("%s: %v", m.name, r)
	}
	if err := benchsnap.Write(out, doc); err != nil {
		t.Fatalf("writing %s: %v", out, err)
	}
	fmt.Printf("bench snapshot written to %s\n", out)
}

// TestBenchStreamRefit is the streaming gate behind `make stream-replay`:
// it measures the single-day incremental refit against the from-scratch
// full refit over the identical 20k+day history (min-of-k, see
// measureGated), fails unless the incremental path wins, fails if
// incremental_refit_20k regressed more than 15% ns/op against the
// committed snapshot, and — when RAINSHINE_BENCH_OUT is set — merges the
// fresh number into the snapshot with the full-refit comparator recorded
// as a baseline so the speedup stays auditable.
func TestBenchStreamRefit(t *testing.T) {
	if os.Getenv("RAINSHINE_BENCH_STREAM") == "" {
		t.Skip("RAINSHINE_BENCH_STREAM unset; run via `make stream-replay`")
	}
	const gate = 0.15
	recorded, err := benchsnap.Read("BENCH_analysis.json")
	if err != nil {
		t.Fatal(err)
	}
	budget := recorded.Budget("incremental_refit_20k", gate)
	inc := benchsnap.MeasureGated(BenchmarkIncrementalRefit20k, budget, 5)
	full := benchsnap.MeasureGated(BenchmarkFullRefit20k, 0, 3)
	if inc.N == 0 || full.N == 0 {
		t.Fatal("refit benchmarks did not run")
	}
	t.Logf("incremental_refit_20k: %v", inc)
	t.Logf("full_refit_20k: %v", full)
	if inc.NsPerOp() >= full.NsPerOp() {
		t.Errorf("incremental refit (%d ns/op) does not beat full refit (%d ns/op) on single-day drift",
			inc.NsPerOp(), full.NsPerOp())
	}
	if budget > 0 {
		rec := recorded.Results["incremental_refit_20k"]
		if ratio := float64(inc.NsPerOp()) / float64(rec.NsPerOp); ratio > 1+gate {
			t.Errorf("incremental_refit_20k regressed: %d ns/op vs recorded %d (%+.1f%%, gate +%.0f%%)",
				inc.NsPerOp(), rec.NsPerOp, (ratio-1)*100, gate*100)
		}
	} else if rec, ok := recorded.Results["incremental_refit_20k"]; ok && rec.NsPerOp > 0 {
		t.Logf("incremental_refit_20k: recorded at gomaxprocs=%d, running at %d; gate skipped (not like-for-like)",
			recorded.Procs(rec), runtime.GOMAXPROCS(0))
	} else {
		t.Log("incremental_refit_20k: no recorded result to gate against")
	}
	out := os.Getenv("RAINSHINE_BENCH_OUT")
	if out == "" {
		return
	}
	doc, err := benchsnap.Read(out)
	if err != nil {
		t.Fatal(err)
	}
	doc.Results["incremental_refit_20k"] = benchsnap.Of(inc)
	base := benchsnap.Of(full)
	base.Note = "from-scratch refit over the same 20k+day rows; the incremental gate's comparator"
	doc.Baselines["full_refit_20k"] = base
	if err := benchsnap.Write(out, doc); err != nil {
		t.Fatalf("writing %s: %v", out, err)
	}
	fmt.Printf("stream bench snapshot merged into %s\n", out)
}

// TestBenchFleet is the fleet-scale gate behind `make bench-fleet`: it
// re-measures the 20k exact fit and the 1M binned fit (best-of-N, see
// measureGated), fails if either regressed more than 15% in ns/op
// against the committed snapshot, and
// — when RAINSHINE_BENCH_OUT is set — merges the fresh numbers into the
// snapshot, recording a cart_fit_1m_exact baseline (with its iteration
// count) the first time it runs so the binned speedup stays auditable.
func TestBenchFleet(t *testing.T) {
	if os.Getenv("RAINSHINE_BENCH_FLEET") == "" {
		t.Skip("RAINSHINE_BENCH_FLEET unset; run via `make bench-fleet`")
	}
	const gate = 0.15
	recorded, err := benchsnap.Read("BENCH_analysis.json")
	if err != nil {
		t.Fatal(err)
	}
	marks := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"cart_fit_20k", BenchmarkCARTFit},
		{"cart_fit_1m_binned", BenchmarkCARTFit1MBinned},
	}
	fresh := map[string]benchsnap.Result{}
	for _, m := range marks {
		budget := recorded.Budget(m.name, gate)
		r := benchsnap.MeasureGated(m.fn, budget, 5)
		if r.N == 0 {
			t.Fatalf("%s: benchmark did not run", m.name)
		}
		fresh[m.name] = benchsnap.Of(r)
		t.Logf("%s: %v", m.name, r)
		if budget == 0 {
			if rec, ok := recorded.Results[m.name]; ok && rec.NsPerOp > 0 {
				t.Logf("%s: recorded at gomaxprocs=%d, running at %d; gate skipped (not like-for-like)",
					m.name, recorded.Procs(rec), runtime.GOMAXPROCS(0))
			} else {
				t.Logf("%s: no recorded result to gate against", m.name)
			}
			continue
		}
		rec := recorded.Results[m.name]
		if ratio := float64(r.NsPerOp()) / float64(rec.NsPerOp); ratio > 1+gate {
			t.Errorf("%s regressed: %d ns/op vs recorded %d (%+.1f%%, gate +%.0f%%)",
				m.name, r.NsPerOp(), rec.NsPerOp, (ratio-1)*100, gate*100)
		}
	}
	out := os.Getenv("RAINSHINE_BENCH_OUT")
	if out == "" {
		return
	}
	doc, err := benchsnap.Read(out)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range fresh {
		doc.Results[name] = r
	}
	if _, ok := doc.Baselines["cart_fit_1m_exact"]; !ok {
		r := testing.Benchmark(benchCARTFit1MExact)
		base := benchsnap.Of(r)
		base.Note = "presorted exact engine at 1M rows; reference for the binned speedup"
		doc.Baselines["cart_fit_1m_exact"] = base
		t.Logf("cart_fit_1m_exact baseline: %v", r)
	}
	if err := benchsnap.Write(out, doc); err != nil {
		t.Fatalf("writing %s: %v", out, err)
	}
	fmt.Printf("fleet bench snapshot merged into %s\n", out)
}
