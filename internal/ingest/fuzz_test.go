package ingest

import (
	"bytes"
	"strings"
	"testing"

	"rainshine/internal/export"
	"rainshine/internal/ticket"
)

// FuzzIngestTickets drives arbitrary bytes through the external ticket
// path: CSV parse, then scrub. Whatever the bytes, the pipeline must
// not panic, and any stream the parser accepts must come out of the
// scrubber satisfying the report invariants.
func FuzzIngestTickets(f *testing.F) {
	var seed bytes.Buffer
	if err := export.TicketsCSV(&seed, []ticket.Ticket{
		{ID: 1, Day: 5, Hour: 2.25, Rack: 3, Fault: ticket.DiskFailure, RepairHours: 4, Repeat: 1},
		{ID: 2, Day: 5, Hour: 2.25, Rack: 3, Fault: ticket.DiskFailure, RepairHours: 4, Repeat: 1},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("id,date,day,hour,dc,rack,category,fault,false_positive,repair_hours,device,repeat\n")
	f.Add("id,date,day,hour,dc,rack,category,fault,false_positive,repair_hours,device,repeat\n" +
		"9,2016-01-01,-3,NaN,DC1,1,Hardware,Disk failure,false,+Inf,0,1\n")
	f.Add("not,a,ticket\n1,2,3\n")
	f.Fuzz(func(t *testing.T, in string) {
		ts, err := export.ReadTicketsCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		var rep Report
		out := ScrubTickets(ts, TicketBounds{Days: 1000, Racks: 1000, DCs: 2}, &rep, true)
		if len(out) > len(ts) {
			t.Fatalf("scrub grew the stream: %d -> %d", len(ts), len(out))
		}
		if rep.TicketsIn != len(ts) || rep.TicketsKept != len(out) {
			t.Fatalf("report miscounts: in %d/%d kept %d/%d", rep.TicketsIn, len(ts), rep.TicketsKept, len(out))
		}
		if c := rep.TicketCoverage(); c < 0 || c > 1 {
			t.Fatalf("ticket coverage %v outside [0,1]", c)
		}
		// Everything dropped must be accounted to a ticket class.
		dropped := 0
		for _, cl := range []Class{DuplicateTicket, TicketOutOfRange, TicketBadHour, TicketBadRepair, TicketUnknownFault} {
			dropped += rep.Quarantined[cl]
		}
		if dropped != len(ts)-len(out) {
			t.Fatalf("quarantine ledger %d != dropped %d", dropped, len(ts)-len(out))
		}
		// A scrubbed stream must re-scrub as defect-free on the ticket
		// classes (idempotence).
		var again Report
		out2 := ScrubTickets(out, TicketBounds{Days: 1000, Racks: 1000, DCs: 2}, &again, true)
		if len(out2) != len(out) || !again.Clean() {
			t.Fatalf("scrub not idempotent: %d -> %d, defects %d", len(out), len(out2), again.Defects())
		}
	})
}
