// Package parallel is the analysistest twin of
// rainshine/internal/parallel: same entry points, serial execution.
package parallel

import "context"

// ForEach runs fn for every index.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}

// ForEachWorker runs fn with a worker slot and an index.
func ForEachWorker(ctx context.Context, workers, n int, fn func(w, i int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(0, i); err != nil {
			return err
		}
	}
	return nil
}

// Map collects fn's results in index order.
func Map[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	for i := 0; i < n; i++ {
		v, err := fn(i)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
