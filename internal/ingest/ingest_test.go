package ingest

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"rainshine/internal/frame"
	"rainshine/internal/ticket"
)

func TestClassTaxonomy(t *testing.T) {
	seenErr := map[error]bool{}
	seenName := map[string]bool{}
	for c := Class(0); c < NumClasses; c++ {
		if c.String() == "unknown" || c.String() == "" {
			t.Errorf("class %d has no name", c)
		}
		if c.Err() == nil {
			t.Errorf("class %s has no sentinel", c)
		}
		if seenErr[c.Err()] || seenName[c.String()] {
			t.Errorf("class %s reuses a sentinel or name", c)
		}
		seenErr[c.Err()] = true
		seenName[c.String()] = true
	}
	if Class(-1).Err() == nil || Class(NumClasses).String() != "unknown" {
		t.Error("out-of-range classes not handled")
	}
}

func TestValidateTicketSentinels(t *testing.T) {
	b := TicketBounds{Days: 100, Racks: 50, DCs: 2}
	good := ticket.Ticket{Day: 10, Hour: 3.5, Rack: 7, Fault: ticket.DiskFailure, RepairHours: 2}
	if err := ValidateTicket(&good, b); err != nil {
		t.Fatalf("valid ticket rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*ticket.Ticket)
		want error
	}{
		{"day past window", func(tk *ticket.Ticket) { tk.Day = 100 }, ErrTicketOutOfRange},
		{"negative day", func(tk *ticket.Ticket) { tk.Day = -1 }, ErrTicketOutOfRange},
		{"rack past fleet", func(tk *ticket.Ticket) { tk.Rack = 50 }, ErrTicketOutOfRange},
		{"dc past fleet", func(tk *ticket.Ticket) { tk.DC = 2 }, ErrTicketOutOfRange},
		{"hour 24", func(tk *ticket.Ticket) { tk.Hour = 24 }, ErrTicketBadHour},
		{"NaN hour", func(tk *ticket.Ticket) { tk.Hour = math.NaN() }, ErrTicketBadHour},
		{"negative repair", func(tk *ticket.Ticket) { tk.RepairHours = -1 }, ErrTicketBadRepair},
		{"Inf repair", func(tk *ticket.Ticket) { tk.RepairHours = math.Inf(1) }, ErrTicketBadRepair},
		{"unknown fault", func(tk *ticket.Ticket) { tk.Fault = ticket.NumFaults }, ErrTicketUnknownFault},
	}
	for _, tc := range cases {
		tk := good
		tc.mut(&tk)
		if err := ValidateTicket(&tk, b); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	// Zero bounds disable the range checks (external streams).
	far := good
	far.Day = 10_000
	if err := ValidateTicket(&far, TicketBounds{}); err != nil {
		t.Errorf("unbounded validation rejected far day: %v", err)
	}
}

func TestScrubTicketsDedupAndAudit(t *testing.T) {
	orig := ticket.Ticket{ID: 1, Day: 5, Hour: 2, Rack: 3, Fault: ticket.DiskFailure, RepairHours: 4, Repeat: 1}
	dup := orig
	dup.ID = 2 // identical content, fresh ID: a double-submitted RMA
	distinct := orig
	distinct.ID = 3
	distinct.Hour = 9 // different content: kept
	in := []ticket.Ticket{orig, dup, distinct}

	var rep Report
	out := ScrubTickets(in, TicketBounds{Days: 100}, &rep, true)
	if len(out) != 2 {
		t.Fatalf("kept %d tickets, want 2", len(out))
	}
	if rep.Quarantined[DuplicateTicket] != 1 {
		t.Errorf("duplicate count = %d", rep.Quarantined[DuplicateTicket])
	}
	if rep.TicketsIn != 3 || rep.TicketsKept != 2 {
		t.Errorf("in/kept = %d/%d", rep.TicketsIn, rep.TicketsKept)
	}
	if got := rep.TicketCoverage(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("ticket coverage = %v", got)
	}

	// Audit mode counts the same defects but returns the input as is.
	var audit Report
	got := ScrubTickets(in, TicketBounds{Days: 100}, &audit, false)
	if !reflect.DeepEqual(got, in) {
		t.Error("audit mode modified the stream")
	}
	if audit.Quarantined[DuplicateTicket] != 1 {
		t.Error("audit mode missed the duplicate")
	}
}

func TestScrubTicketsRepairsRepeatInversion(t *testing.T) {
	// One device, three RMAs. Clock skew moved the second occurrence
	// before the first: counters now disagree with time order.
	mk := func(id, day, repeat int) ticket.Ticket {
		return ticket.Ticket{ID: id, Day: day, Hour: 1, Rack: 2, Fault: ticket.DiskFailure,
			RepairHours: 3, Device: 4, Repeat: repeat}
	}
	in := []ticket.Ticket{mk(1, 20, 2), mk(2, 30, 1), mk(3, 40, 3)}
	var rep Report
	out := ScrubTickets(in, TicketBounds{Days: 100}, &rep, true)
	if rep.Repaired[RepeatInversion] != 2 {
		t.Errorf("repairs = %d, want 2 (both inverted counters)", rep.Repaired[RepeatInversion])
	}
	for _, tk := range out {
		want := map[int]int{20: 1, 30: 2, 40: 3}[tk.Day]
		if tk.Repeat != want {
			t.Errorf("day %d repeat = %d, want %d", tk.Day, tk.Repeat, want)
		}
	}
	// A clean stream is untouched.
	var clean Report
	ScrubTickets(out, TicketBounds{Days: 100}, &clean, true)
	if clean.Repaired[RepeatInversion] != 0 {
		t.Error("repaired stream still reports inversions")
	}
}

func TestImpute(t *testing.T) {
	xs := []float64{0, 0, 10, 0, 0, 0, 30, 0}
	trusted := []bool{false, false, true, false, false, false, true, false}
	impute(xs, trusted)
	want := []float64{10, 10, 10, 15, 20, 25, 30, 30}
	for i := range xs {
		if math.Abs(xs[i]-want[i]) > 1e-12 {
			t.Fatalf("impute[%d] = %v, want %v (full: %v)", i, xs[i], want[i], xs)
		}
	}
}

func TestSanitizeFrame(t *testing.T) {
	f := frame.New(4)
	if err := f.AddContinuous("temp", []float64{70, math.NaN(), 72, math.Inf(1)}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("rh", []float64{30, 31, 32, 33}); err != nil {
		t.Fatal(err)
	}
	var rep Report
	q, err := SanitizeFrame(f, []string{"temp", "rh"}, &rep)
	if err != nil {
		t.Fatal(err)
	}
	if q.MissingCells["temp"] != 2 || q.InfCells != 1 {
		t.Errorf("quality = %+v", q)
	}
	if rep.Quarantined[NonFiniteCell] != 2 {
		t.Errorf("non-finite count = %d", rep.Quarantined[NonFiniteCell])
	}
	c, err := f.Col("temp")
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(c.Data[3]) {
		t.Error("Inf cell not normalized to NaN")
	}
	// Quarantined cells land in the null bitmap, so downstream layers
	// can test missingness without probing floats.
	if got := c.NullCount(); got != 2 {
		t.Errorf("temp null count = %d, want 2", got)
	}
	for i, want := range []bool{false, true, false, true} {
		if c.Missing(i) != want {
			t.Errorf("temp Missing(%d) = %v, want %v", i, c.Missing(i), want)
		}
	}
	if rh, _ := f.Col("rh"); rh.HasNulls() {
		t.Error("undamaged column gained null marks")
	}
	// Coverage: 2 missing of 4 cells in the one damaged column of two.
	if got := q.Coverage(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("coverage = %v", got)
	}

	// Missing required column is a typed failure.
	_, err = SanitizeFrame(f, []string{"temp", "disk_failures"}, &rep)
	if !errors.Is(err, ErrMissingColumn) {
		t.Errorf("missing column error = %v", err)
	}
	if rep.Quarantined[MissingColumn] != 1 {
		t.Errorf("missing column count = %d", rep.Quarantined[MissingColumn])
	}
}

func TestAvailableFeatures(t *testing.T) {
	f := frame.New(2)
	if err := f.AddContinuous("temp", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	have, dropped := AvailableFeatures(f, []string{"temp", "power_kw"})
	if !reflect.DeepEqual(have, []string{"temp"}) || !reflect.DeepEqual(dropped, []string{"power_kw"}) {
		t.Errorf("have=%v dropped=%v", have, dropped)
	}
}
