package frameclone_test

import (
	"testing"

	"rainshine/internal/analysis/analysistest"
	"rainshine/internal/analyzers/frameclone"
)

func TestFrameclone(t *testing.T) {
	analysistest.Run(t, "testdata", frameclone.Analyzer, "a")
}
