package frame

import (
	"fmt"
	"math"
)

// maxTypedLevels is the widest level table the uint8 code layout can
// address while reserving at least one out-of-range code value as the
// in-band missing sentinel (code 255 with a full 255-level table).
const maxTypedLevels = 255

// Column is one typed dense column with two physical layouts:
//
//   - Continuous columns — and categorical columns with more than 255
//     levels — store raw float64 values in Data;
//   - Nominal/Ordinal columns with at most 255 levels store uint8 level
//     indices in codes: a quarter of the memory, and the shape the
//     binned CART coding pass copies without a float64 round-trip.
//
// Exactly one of Data/codes is populated. Missing cells are carried two
// ways, and a cell is missing if either marks it:
//
//   - an in-band sentinel — a non-finite value (NaN/±Inf) in Data, or a
//     code at or above len(Levels) in a typed column;
//   - a set bit in the null bitmap — the explicit marking the ingest
//     quarantine/repair pipeline writes, which can coexist with a
//     valid-looking (suspect) raw value kept for forensics.
type Column struct {
	Name   string
	Kind   Kind
	Data   []float64 // float64 cell storage; nil when codes is set
	Levels []string  // nil for Continuous

	// codes is the uint8 level-index storage of typed categorical
	// columns; nil for float64-backed columns. Shared storage with the
	// same aliasing rules as Data.
	codes []uint8

	// nulls marks cells quarantined by ingest; nil means none.
	nulls *Bitmap
}

// Len returns the number of rows in the column, whatever the physical
// layout.
func (c *Column) Len() int {
	if c.codes != nil {
		return len(c.codes)
	}
	return len(c.Data)
}

// Codes returns the uint8 level-index storage of a typed categorical
// column, or nil when the column is float64-backed. Like Data the slice
// is shared storage: treat it as read-only unless the column is
// exclusively owned. A code at or above len(Levels) is the in-band
// missing sentinel, the typed twin of NaN.
func (c *Column) Codes() []uint8 { return c.codes }

// Float returns the raw cell at row i as a float64 regardless of
// layout. For typed columns this is float64(code) — exact, since every
// code fits in a byte. It reports the stored value only; use Missing
// for the null-bitmap union.
func (c *Column) Float(i int) float64 {
	if c.codes != nil {
		return float64(c.codes[i])
	}
	return c.Data[i]
}

// Code returns the level index stored at row i of a categorical column,
// whatever the layout. The index is not range-checked: callers that can
// see corrupt or null-marked cells must consult Missing first.
func (c *Column) Code(i int) int {
	if c.codes != nil {
		return int(c.codes[i])
	}
	return int(c.Data[i])
}

// Values returns the column as dense float64 with every missing cell
// (null-marked or in-band sentinel) materialized as NaN. A
// float64-backed column with no null marks aliases Data — no copy, so
// treat the result as read-only; every other case allocates a fresh
// slice the caller owns.
func (c *Column) Values() []float64 {
	if c.codes == nil {
		if !c.nulls.Any() {
			return c.Data
		}
		out := append([]float64(nil), c.Data...)
		for i := range out {
			if c.nulls.Get(i) {
				out[i] = math.NaN()
			}
		}
		return out
	}
	out := make([]float64, len(c.codes))
	nl := uint8(len(c.Levels))
	for i, cd := range c.codes {
		if cd >= nl || c.nulls.Get(i) {
			out[i] = math.NaN()
			continue
		}
		out[i] = float64(cd)
	}
	return out
}

// LevelOf returns the level string for a value of a categorical column.
// Continuous values format as numbers. A categorical value whose level
// index is out of range is corrupted data and returns the marked form
// "<invalid:i>" so it surfaces in reports instead of masquerading as a
// measurement.
func (c *Column) LevelOf(v float64) string {
	if c.Kind == Continuous {
		return fmt.Sprintf("%g", v)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) || v != math.Trunc(v) {
		return fmt.Sprintf("<invalid:%g>", v)
	}
	i := int(v)
	if i < 0 || i >= len(c.Levels) {
		return fmt.Sprintf("<invalid:%d>", i)
	}
	return c.Levels[i]
}

// MarkNull sets the null bit for row i, leaving the cell storage
// untouched so the quarantined raw value stays inspectable. Analyses
// that honor the bitmap treat the cell as missing regardless of the
// stored value.
func (c *Column) MarkNull(i int) {
	if c.nulls == nil {
		c.nulls = NewBitmap(c.Len())
	}
	c.nulls.Set(i)
}

// SetMissing marks row i null and overwrites the cell with the in-band
// sentinel legacy consumers that read the storage directly understand:
// NaN for float64-backed columns, an out-of-range code for typed ones.
func (c *Column) SetMissing(i int) {
	c.MarkNull(i)
	if c.codes != nil {
		c.codes[i] = maxTypedLevels
		return
	}
	c.Data[i] = math.NaN()
}

// Missing reports whether the cell at row i is unusable: null-marked or
// carrying the layout's in-band sentinel.
func (c *Column) Missing(i int) bool {
	if c.nulls.Get(i) {
		return true
	}
	if c.codes != nil {
		return int(c.codes[i]) >= len(c.Levels)
	}
	v := c.Data[i]
	return math.IsNaN(v) || math.IsInf(v, 0)
}

// HasNulls reports whether any cell carries an explicit null mark. It
// deliberately ignores in-band sentinels; use MissingCount for the
// union.
func (c *Column) HasNulls() bool { return c.nulls.Any() }

// NullCount returns the number of explicitly null-marked cells.
func (c *Column) NullCount() int { return c.nulls.Count() }

// MissingCount returns the number of missing cells: the union of
// null-marked and in-band-sentinel entries.
func (c *Column) MissingCount() int {
	total := 0
	for i, n := 0, c.Len(); i < n; i++ {
		if c.Missing(i) {
			total++
		}
	}
	return total
}

// Nulls returns the column's null bitmap, or nil when no cell was ever
// marked. The bitmap is shared storage, like Data: treat it as
// read-only unless the column is exclusively owned.
func (c *Column) Nulls() *Bitmap { return c.nulls }

// Clone returns a deep copy of the column — its own cell storage and
// null bitmap — safe to mutate regardless of who else holds the
// original.
func (c *Column) Clone() *Column {
	cl := &Column{
		Name:   c.Name,
		Kind:   c.Kind,
		Levels: c.Levels,
		nulls:  c.nulls.Clone(),
	}
	if c.codes != nil {
		cl.codes = append([]uint8(nil), c.codes...)
	} else {
		cl.Data = append([]float64(nil), c.Data...)
	}
	return cl
}
