// Package workload models per-class demand: how hard each workload
// drives its servers over time. The paper attributes the weekday
// failure elevation (Fig 3) to "variations in workload demand over the
// week"; this package makes that mechanism explicit — interactive
// classes follow business-hour/weekday cycles, batch and HPC classes run
// flat or anti-cyclic — and the hazard model converts utilization into a
// stress multiplier.
package workload

import (
	"fmt"
	"math"

	"rainshine/internal/calendar"
	"rainshine/internal/rng"
	"rainshine/internal/topology"
)

// Profile describes one workload class's demand pattern.
type Profile struct {
	Class topology.Workload
	// Base is the average utilization (0-1).
	Base float64
	// WeekdayBoost is added on weekdays (interactive classes spike with
	// users; batch backfills weekends).
	WeekdayBoost float64
	// SeasonalAmp scales a year-end business ramp (retail-style load).
	SeasonalAmp float64
	// Noise is the day-to-day jitter (standard deviation).
	Noise float64
}

// DefaultProfiles returns the per-class demand profiles. The compute
// classes are interactive (strong weekday cycles); storage-data serves
// steady replication traffic; HPC runs near-flat at high utilization.
func DefaultProfiles() map[topology.Workload]Profile {
	return map[topology.Workload]Profile{
		topology.W1: {Class: topology.W1, Base: 0.55, WeekdayBoost: 0.20, SeasonalAmp: 0.10, Noise: 0.05},
		topology.W2: {Class: topology.W2, Base: 0.65, WeekdayBoost: 0.22, SeasonalAmp: 0.12, Noise: 0.06},
		topology.W3: {Class: topology.W3, Base: 0.80, WeekdayBoost: 0.00, SeasonalAmp: 0.00, Noise: 0.03},
		topology.W4: {Class: topology.W4, Base: 0.50, WeekdayBoost: 0.12, SeasonalAmp: 0.08, Noise: 0.05},
		topology.W5: {Class: topology.W5, Base: 0.45, WeekdayBoost: 0.06, SeasonalAmp: 0.05, Noise: 0.04},
		topology.W6: {Class: topology.W6, Base: 0.45, WeekdayBoost: 0.06, SeasonalAmp: 0.05, Noise: 0.04},
		topology.W7: {Class: topology.W7, Base: 0.52, WeekdayBoost: 0.12, SeasonalAmp: 0.08, Noise: 0.05},
	}
}

// Model precomputes per-class daily utilization series.
type Model struct {
	days int
	util map[topology.Workload][]float64
}

// New builds utilization series for every workload class over the
// observation window. Deterministic given the source.
func New(src *rng.Source, days int) (*Model, error) {
	if days <= 0 {
		return nil, fmt.Errorf("workload: non-positive days %d", days)
	}
	m := &Model{days: days, util: make(map[topology.Workload][]float64)}
	for wl, p := range DefaultProfiles() {
		wsrc := src.SplitIndex("workload/class", int(wl))
		series := make([]float64, days)
		for d := 0; d < days; d++ {
			u := p.Base
			if !calendar.IsWeekend(d) {
				u += p.WeekdayBoost
			}
			// Year-end business ramp peaking in November.
			doy := float64(calendar.DayOfYear(d))
			u += p.SeasonalAmp * 0.5 * (1 + math.Cos(2*math.Pi*(doy-320)/365.25))
			u += wsrc.NormFloat64() * p.Noise
			series[d] = clamp01(u)
		}
		m.util[wl] = series
	}
	return m, nil
}

// Utilization returns the class's utilization on the day.
func (m *Model) Utilization(wl topology.Workload, day int) (float64, error) {
	series, ok := m.util[wl]
	if !ok {
		return 0, fmt.Errorf("workload: unknown class %v", wl)
	}
	if day < 0 || day >= m.days {
		return 0, fmt.Errorf("workload: day %d out of range [0,%d)", day, m.days)
	}
	return series[day], nil
}

// StressMultiplier converts utilization into a hazard multiplier:
// linear in load around a neutral point of 0.5 — a 100%-utilized server
// is 1+StressSlope/2 times as failure-prone as a half-idle one. The
// paper's Fig 3 weekday elevation emerges from this mechanism.
const StressSlope = 1.0

// StressMultiplier returns the failure-rate multiplier for a utilization.
func StressMultiplier(utilization float64) float64 {
	return 1 + StressSlope*(clamp01(utilization)-0.5)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
