package cart

import (
	"math"
	"testing"
	"testing/quick"

	"rainshine/internal/frame"
	"rainshine/internal/rng"
)

// randomFrame builds a frame with one continuous, one nominal, and one
// ordinal feature plus a target derived from them with noise, sized and
// seeded by the fuzzer.
func randomFrame(seed uint64, nRaw uint16) (*frame.Frame, error) {
	n := int(nRaw%400) + 50
	src := rng.New(seed)
	x := make([]float64, n)
	cat := make([]int, n)
	ord := make([]int, n)
	y := make([]float64, n)
	for i := range y {
		x[i] = src.Float64() * 100
		cat[i] = src.IntN(5)
		ord[i] = src.IntN(7)
		y[i] = 0.05*x[i] + float64(cat[i]%3) + 0.3*float64(ord[i]) + src.NormFloat64()
	}
	f := frame.New(n)
	if err := f.AddContinuous("x", x); err != nil {
		return nil, err
	}
	if err := f.AddNominalInts("cat", cat, []string{"a", "b", "c", "d", "e"}); err != nil {
		return nil, err
	}
	if err := f.AddOrdinalInts("ord", ord, []string{"o0", "o1", "o2", "o3", "o4", "o5", "o6"}); err != nil {
		return nil, err
	}
	if err := f.AddContinuous("y", y); err != nil {
		return nil, err
	}
	return f, nil
}

var propFeatures = []string{"x", "cat", "ord"}

func propConfig(seed uint64) Config {
	return Config{
		Task:     Regression,
		MaxDepth: int(seed%6) + 2,
		MinSplit: int(seed%30) + 4,
		MinLeaf:  int(seed%10) + 1,
		CP:       0.001,
	}
}

// TestPropPredictionsWithinTargetRange: a regression tree predicts leaf
// means, so every prediction must lie inside [min(y), max(y)].
func TestPropPredictionsWithinTargetRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		fr, err := randomFrame(seed, nRaw)
		if err != nil {
			return false
		}
		tree, err := Fit(fr, "y", propFeatures, propConfig(seed))
		if err != nil {
			return false
		}
		y := fr.MustCol("y").Data
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range y {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		preds, err := tree.PredictFrame(fr)
		if err != nil {
			return false
		}
		for _, p := range preds {
			if p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropLeafSizesPartitionRows: leaf N values sum to the row count and
// AssignLeaves agrees with the leaf statistics.
func TestPropLeafSizesPartitionRows(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		fr, err := randomFrame(seed, nRaw)
		if err != nil {
			return false
		}
		cfg := propConfig(seed)
		tree, err := Fit(fr, "y", propFeatures, cfg)
		if err != nil {
			return false
		}
		total := 0
		for _, leaf := range tree.Leaves() {
			if leaf.N < cfg.MinLeaf && tree.NumLeaves() > 1 {
				return false
			}
			total += leaf.N
		}
		if total != fr.NumRows() {
			return false
		}
		assign, err := tree.AssignLeaves(fr)
		if err != nil {
			return false
		}
		counts := make([]int, tree.NumLeaves())
		for _, a := range assign {
			counts[a]++
		}
		for i, leaf := range tree.Leaves() {
			if counts[i] != leaf.N {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropImportanceBounds: importances lie in [0, 100] with the max
// exactly 100 when any split happened.
func TestPropImportanceBounds(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		fr, err := randomFrame(seed, nRaw)
		if err != nil {
			return false
		}
		tree, err := Fit(fr, "y", propFeatures, propConfig(seed))
		if err != nil {
			return false
		}
		imp := tree.Importance()
		maxV := 0.0
		for _, v := range imp {
			if v < 0 || v > 100 {
				return false
			}
			if v > maxV {
				maxV = v
			}
		}
		if tree.NumLeaves() > 1 && maxV != 100 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropPruningShrinksMonotonically: repeated weakest-link pruning
// yields a non-increasing leaf count ending at 1, and the pruned tree
// still partitions the data.
func TestPropPruningShrinksMonotonically(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		fr, err := randomFrame(seed, nRaw)
		if err != nil {
			return false
		}
		tree, err := Fit(fr, "y", propFeatures, propConfig(seed))
		if err != nil {
			return false
		}
		prev := tree.NumLeaves()
		for target := prev - 1; target >= 1; target-- {
			tree.PruneToLeaves(target)
			now := tree.NumLeaves()
			if now > target || now > prev {
				return false
			}
			prev = now
			total := 0
			for _, leaf := range tree.Leaves() {
				total += leaf.N
			}
			if total != fr.NumRows() {
				return false
			}
		}
		return tree.NumLeaves() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestPropSSEDecreasesWithSplits: the total leaf impurity never exceeds
// the root impurity (splitting can only explain variance).
func TestPropSSEDecreasesWithSplits(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		fr, err := randomFrame(seed, nRaw)
		if err != nil {
			return false
		}
		tree, err := Fit(fr, "y", propFeatures, propConfig(seed))
		if err != nil {
			return false
		}
		leafSSE := 0.0
		for _, leaf := range tree.Leaves() {
			if leaf.Impurity < -1e-9 {
				return false
			}
			leafSSE += leaf.Impurity
		}
		return leafSSE <= tree.Root.Impurity+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
