package cart

// Prune performs weakest-link cost-complexity pruning: every internal
// node whose subtree does not reduce impurity by at least alpha per
// extra leaf is collapsed. Pruning mutates the tree in place and
// renumbers leaves. alpha is expressed as a fraction of the root
// impurity, matching rpart's cp scale.
func (t *Tree) Prune(alpha float64) {
	if alpha <= 0 || t.Root.IsLeaf() {
		return
	}
	threshold := alpha * t.Root.Impurity
	for {
		node, g := weakestLink(t.Root)
		if node == nil || g >= threshold {
			break
		}
		collapse(node)
	}
	t.numberLeaves()
}

// PruneToLeaves prunes weakest links until the tree has at most n leaves.
func (t *Tree) PruneToLeaves(n int) {
	if n < 1 {
		n = 1
	}
	for t.NumLeaves() > n {
		node, _ := weakestLink(t.Root)
		if node == nil {
			break
		}
		collapse(node)
		t.numberLeaves()
	}
}

// weakestLink finds the internal node with the smallest per-leaf
// impurity reduction g(t) = (R(t) - R(T_t)) / (|T_t| - 1).
func weakestLink(root *Node) (*Node, float64) {
	var best *Node
	bestG := 0.0
	var walk func(n *Node) (subtreeImp float64, leaves int)
	walk = func(n *Node) (float64, int) {
		if n.IsLeaf() {
			return n.Impurity, 1
		}
		li, ll := walk(n.Left)
		ri, rl := walk(n.Right)
		imp, leaves := li+ri, ll+rl
		g := (n.Impurity - imp) / float64(leaves-1)
		if best == nil || g < bestG {
			best, bestG = n, g
		}
		return imp, leaves
	}
	walk(root)
	return best, bestG
}

// collapse turns an internal node into a leaf.
func collapse(n *Node) {
	n.Left, n.Right = nil, nil
	n.Feature = -1
	n.Threshold = 0
	n.LeftSet = nil
}
