package cart

import (
	"context"
	"math"
	"reflect"
	"testing"

	"rainshine/internal/frame"
	"rainshine/internal/rng"
)

// refitData draws n synthetic rows: two continuous features, a nominal
// factor, and an additive response with a threshold effect on x1.
func refitData(seed uint64, n int) (rows [][]float64, y []float64) {
	src := rng.New(seed)
	rows = make([][]float64, n)
	y = make([]float64, n)
	for i := range rows {
		x1 := src.Float64() * 100
		x2 := src.NormFloat64() * 10
		cat := float64(src.IntN(5))
		if src.Float64() < 0.03 {
			x2 = math.NaN()
		}
		rows[i] = []float64{x1, x2, cat}
		y[i] = 0.05*x1 + cat
		if x1 > 60 {
			y[i] += 8
		}
		y[i] += src.NormFloat64() * 0.5
	}
	return rows, y
}

func refitFeatures() []Feature {
	return []Feature{
		{Name: "x1", Kind: frame.Continuous},
		{Name: "x2", Kind: frame.Continuous},
		{Name: "cat", Kind: frame.Nominal, Levels: []string{"a", "b", "c", "d", "e"}},
	}
}

// refitFrame materializes refit rows as a frame for batch Fit parity.
func refitFrame(t *testing.T, rows [][]float64, y []float64) *frame.Frame {
	t.Helper()
	n := len(rows)
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	cat := make([]int, n)
	for i, r := range rows {
		x1[i], x2[i], cat[i] = r[0], r[1], int(r[2])
	}
	f := frame.New(n)
	if err := f.AddContinuous("x1", x1); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("x2", x2); err != nil {
		t.Fatal(err)
	}
	if err := f.AddNominalInts("cat", cat, []string{"a", "b", "c", "d", "e"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddContinuous("y", y); err != nil {
		t.Fatal(err)
	}
	return f
}

// assertTreesIdentical compares two trees node for node.
func assertTreesIdentical(t *testing.T, a, b *Tree, label string) {
	t.Helper()
	if a.String() != b.String() {
		t.Fatalf("%s: trees differ:\n--- a ---\n%s\n--- b ---\n%s", label, a, b)
	}
	var walk func(x, y *Node)
	walk = func(x, y *Node) {
		if (x == nil) != (y == nil) {
			t.Fatalf("%s: structural mismatch", label)
		}
		if x == nil {
			return
		}
		if x.N != y.N || x.Value != y.Value || x.Impurity != y.Impurity ||
			x.Feature != y.Feature || x.Threshold != y.Threshold ||
			x.DefaultLeft != y.DefaultLeft || !reflect.DeepEqual(x.LeftSet, y.LeftSet) {
			t.Fatalf("%s: node mismatch: %+v vs %+v", label, x, y)
		}
		walk(x.Left, y.Left)
		walk(x.Right, y.Right)
	}
	walk(a.Root, b.Root)
}

func TestRefitterInitialMatchesBatchFit(t *testing.T) {
	rows, y := refitData(7, 3000)
	cfg := RefitConfig{Config: Config{Workers: 2, Split: SplitExact}}
	r, err := NewRefitter("y", refitFeatures(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Append(rows, y); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Refit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != RefitInitial {
		t.Fatalf("outcome = %v, want initial", rep.Outcome)
	}
	batch, err := Fit(refitFrame(t, rows, y), "y", []string{"x1", "x2", "cat"},
		Config{Workers: 2, Split: SplitExact})
	if err != nil {
		t.Fatal(err)
	}
	assertTreesIdentical(t, r.Tree(), batch, "initial vs batch")
}

func TestRefitterFullRefitMatchesBatchFit(t *testing.T) {
	rows, y := refitData(11, 2000)
	// Tight thresholds so the shifted second half forces the full path.
	cfg := RefitConfig{Config: Config{Workers: 1, Split: SplitExact},
		LeafDrift: 0.01, GlobalDrift: 0.02}
	r, err := NewRefitter("y", refitFeatures(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Append(rows[:1000], y[:1000]); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Refit(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := r.Append(rows[1000:], y[1000:]); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Refit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != RefitFull {
		t.Fatalf("outcome = %v, want full", rep.Outcome)
	}
	batch, err := Fit(refitFrame(t, rows, y), "y", []string{"x1", "x2", "cat"},
		Config{Workers: 1, Split: SplitExact})
	if err != nil {
		t.Fatal(err)
	}
	// A full refit over the same rows in the same order must reproduce
	// the batch tree exactly — the determinism contract of the stream
	// maintainer rests on this.
	assertTreesIdentical(t, r.Tree(), batch, "full refit vs batch")
}

func TestRefitterSubtreeDrift(t *testing.T) {
	rows, y := refitData(13, 4000)
	cfg := RefitConfig{Config: Config{Workers: 2, Split: SplitExact}, GlobalDrift: 0.6}
	r, err := NewRefitter("y", refitFeatures(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Append(rows, y); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Refit(context.Background()); err != nil {
		t.Fatal(err)
	}
	before := r.Tree().NumLeaves()

	// One "day" of new data concentrated in the hot x1 regime with a
	// strongly shifted response: local drift, not global.
	src := rng.New(99)
	var drows [][]float64
	var dy []float64
	for i := 0; i < 300; i++ {
		x1 := 80 + src.Float64()*20
		x2 := src.NormFloat64() * 10
		drows = append(drows, []float64{x1, x2, float64(src.IntN(5))})
		dy = append(dy, 30+src.NormFloat64()*0.5)
	}
	if err := r.Append(drows, dy); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Refit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != RefitSubtrees {
		t.Fatalf("outcome = %v (drifted %d), want subtrees", rep.Outcome, rep.Drifted)
	}
	if rep.Drifted == 0 {
		t.Fatal("no drifted leaves reported")
	}
	if r.Tree().NumLeaves() < before {
		t.Fatalf("leaves shrank: %d -> %d", before, r.Tree().NumLeaves())
	}
	// The updated model must have absorbed the regime shift.
	pred, err := r.Tree().Predict([]float64{90, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if pred < 15 {
		t.Fatalf("hot-regime prediction %.2f did not move toward the new mean", pred)
	}
	// And the quiet regime keeps sane predictions.
	pred, err = r.Tree().Predict([]float64{10, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if pred > 10 {
		t.Fatalf("cool-regime prediction %.2f was dragged by the hot shift", pred)
	}
}

func TestRefitterStatsOnlyOnTinyDelta(t *testing.T) {
	rows, y := refitData(17, 3000)
	cfg := RefitConfig{Config: Config{Workers: 1, Split: SplitExact}, LeafDrift: 0.5}
	r, err := NewRefitter("y", refitFeatures(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Append(rows, y); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Refit(context.Background()); err != nil {
		t.Fatal(err)
	}
	extra, ey := refitData(18, 30)
	if err := r.Append(extra, ey); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Refit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != RefitStats {
		t.Fatalf("outcome = %v, want stats-only", rep.Outcome)
	}
	// Leaf populations must account for every row.
	total := 0
	for _, leaf := range r.Tree().Leaves() {
		total += leaf.N
	}
	if total != r.Rows() {
		t.Fatalf("leaf populations sum to %d, want %d", total, r.Rows())
	}
}

func TestRefitterWorkersDeterministic(t *testing.T) {
	rows, y := refitData(23, 3000)
	delta, dy := refitData(24, 500)
	fit := func(workers int) *Tree {
		cfg := RefitConfig{Config: Config{Workers: workers, Split: SplitExact},
			LeafDrift: 0.05}
		r, err := NewRefitter("y", refitFeatures(), nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Append(rows, y); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Refit(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := r.Append(delta, dy); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Refit(context.Background()); err != nil {
			t.Fatal(err)
		}
		return r.Tree()
	}
	base := fit(1)
	for _, w := range []int{2, 4, 8} {
		assertTreesIdentical(t, base, fit(w), "workers determinism")
	}
}

func TestRefitterValidation(t *testing.T) {
	if _, err := NewRefitter("", refitFeatures(), nil, RefitConfig{}); err == nil {
		t.Fatal("empty target accepted")
	}
	if _, err := NewRefitter("y", nil, nil, RefitConfig{}); err == nil {
		t.Fatal("no features accepted")
	}
	if _, err := NewRefitter("y", refitFeatures(), []string{"a"}, RefitConfig{}); err == nil {
		t.Fatal("regression with class levels accepted")
	}
	cfgC := RefitConfig{Config: Config{Task: Classification}}
	if _, err := NewRefitter("y", refitFeatures(), nil, cfgC); err == nil {
		t.Fatal("classification without class levels accepted")
	}
	r, err := NewRefitter("y", refitFeatures(), nil, RefitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Append([][]float64{{1, 2, 3}}, []float64{1, 2}); err == nil {
		t.Fatal("row/target length mismatch accepted")
	}
	if err := r.Append([][]float64{{1}}, []float64{1}); err == nil {
		t.Fatal("short row accepted")
	}
	if err := r.Append([][]float64{{1, 2, 3}}, []float64{math.NaN()}); err == nil {
		t.Fatal("NaN target accepted")
	}
	if _, err := r.Refit(context.Background()); err == nil {
		t.Fatal("refit with no rows accepted")
	}
}
