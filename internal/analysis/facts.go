// Facts: cross-function, cross-package propagation of properties an
// analyzer proves about package-level objects ("spawns a goroutine",
// "blocks on a channel", "reads the wall clock"). The design mirrors
// golang.org/x/tools/go/analysis facts, shrunk to what a stdlib-only
// driver can carry:
//
//   - a Fact is a JSON-serializable struct naming its kind;
//   - facts attach to package-level functions and methods, keyed by
//     (package path, [Receiver.]Name) rather than by object identity,
//     so they survive serialization across processes;
//   - the driver analyzes packages in dependency order and hands every
//     pass one shared FactStore, so a fact exported while analyzing
//     internal/resilience is importable while analyzing internal/server;
//   - under the go vet -vettool protocol the store round-trips through
//     the .vetx files cmd/go threads between per-package invocations.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// Fact is one exportable property of a package-level object. Concrete
// fact types must be JSON-marshalable structs; FactKind names the type
// stably across processes and must be unique within the suite.
type Fact interface {
	FactKind() string
}

// ObjRef names a package-level object portably: functions by name,
// methods as "Receiver.Name". It is the serialization key for facts.
type ObjRef struct {
	Pkg  string `json:"pkg"`
	Name string `json:"name"`
}

// RefOf derives the portable reference for obj, reporting false for
// objects facts cannot attach to (builtins, locals, nil packages).
func RefOf(obj types.Object) (ObjRef, bool) {
	if obj == nil || obj.Pkg() == nil || obj.Name() == "" {
		return ObjRef{}, false
	}
	name := obj.Name()
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return ObjRef{}, false
			}
			name = named.Obj().Name() + "." + name
		}
	}
	return ObjRef{Pkg: obj.Pkg().Path(), Name: name}, true
}

// FactStore holds every fact exported so far in one driver run, across
// packages and analyzers. It is not safe for concurrent use; the driver
// is single-threaded by design (deterministic diagnostics).
type FactStore struct {
	objs  map[ObjRef]map[string]Fact
	kinds map[string]reflect.Type
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{
		objs:  map[ObjRef]map[string]Fact{},
		kinds: map[string]reflect.Type{},
	}
}

// Register teaches the store the concrete types behind fact kinds so
// serialized facts can be decoded. Analyzers declare prototypes in
// Analyzer.FactTypes; the driver registers them before any pass runs.
func (s *FactStore) Register(prototypes ...Fact) {
	for _, p := range prototypes {
		t := reflect.TypeOf(p)
		for t.Kind() == reflect.Pointer {
			t = t.Elem()
		}
		s.kinds[p.FactKind()] = t
	}
}

// ExportObject records fact f about ref, overwriting a same-kind fact.
func (s *FactStore) ExportObject(ref ObjRef, f Fact) {
	m := s.objs[ref]
	if m == nil {
		m = map[string]Fact{}
		s.objs[ref] = m
	}
	m[f.FactKind()] = f
}

// Object returns the fact of the given kind recorded about ref.
func (s *FactStore) Object(ref ObjRef, kind string) (Fact, bool) {
	f, ok := s.objs[ref][kind]
	return f, ok
}

// serialFact is the on-disk form of one (object, fact) pair.
type serialFact struct {
	Ref  ObjRef          `json:"ref"`
	Kind string          `json:"kind"`
	Fact json.RawMessage `json:"fact"`
}

// serialDoc wraps the fact list with a magic field so a reader can
// distinguish it from unrelated vetx content.
type serialDoc struct {
	Magic string       `json:"rainshinelint_facts"`
	Facts []serialFact `json:"facts"`
}

const factMagic = "v1"

// EncodePackage serializes every fact attached to objects of pkgPath,
// deterministically ordered, for the package's .vetx file. Keys are
// collected and sorted before anything is marshaled, so the output is
// a pure function of the store's contents.
func (s *FactStore) EncodePackage(pkgPath string) ([]byte, error) {
	var refs []ObjRef
	for ref := range s.objs {
		if ref.Pkg == pkgPath {
			refs = append(refs, ref)
		}
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].Name < refs[j].Name })
	doc := serialDoc{Magic: factMagic}
	for _, ref := range refs {
		var kinds []string
		for kind := range s.objs[ref] {
			kinds = append(kinds, kind)
		}
		sort.Strings(kinds)
		for _, kind := range kinds {
			raw, err := json.Marshal(s.objs[ref][kind])
			if err != nil {
				return nil, fmt.Errorf("encoding fact %s of %s.%s: %w", kind, ref.Pkg, ref.Name, err)
			}
			doc.Facts = append(doc.Facts, serialFact{Ref: ref, Kind: kind, Fact: raw})
		}
	}
	return json.Marshal(doc)
}

// DecodeInto merges a serialized fact document into the store. Content
// that is not a fact document (older vetx placeholders, other tools') is
// ignored without error; facts of unregistered kinds are skipped.
func (s *FactStore) DecodeInto(data []byte) error {
	var doc serialDoc
	if err := json.Unmarshal(data, &doc); err != nil || doc.Magic != factMagic {
		return nil
	}
	for _, sf := range doc.Facts {
		t, ok := s.kinds[sf.Kind]
		if !ok {
			continue
		}
		v := reflect.New(t)
		if err := json.Unmarshal(sf.Fact, v.Interface()); err != nil {
			return fmt.Errorf("decoding fact %s of %s.%s: %w", sf.Kind, sf.Ref.Pkg, sf.Ref.Name, err)
		}
		f, ok := v.Interface().(Fact)
		if !ok {
			// Fact types are declared as values; try the element.
			f, ok = v.Elem().Interface().(Fact)
		}
		if ok {
			s.ExportObject(sf.Ref, f)
		}
	}
	return nil
}

// ExportObjectFact records fact f about obj for later passes (same run
// or, through the vetx round-trip, later processes). Objects that have
// no portable reference are ignored.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if p.Facts == nil {
		return
	}
	if ref, ok := RefOf(obj); ok {
		p.Facts.ExportObject(ref, f)
	}
}

// ImportObjectFact retrieves the fact of the given kind recorded about
// obj by this pass or an earlier one.
func (p *Pass) ImportObjectFact(obj types.Object, kind string) (Fact, bool) {
	if p.Facts == nil {
		return nil, false
	}
	ref, ok := RefOf(obj)
	if !ok {
		return nil, false
	}
	return p.Facts.Object(ref, kind)
}
