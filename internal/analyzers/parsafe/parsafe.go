// Package parsafe guards internal/parallel's worker-slot exclusivity
// contract: tasks must communicate only through caller-owned,
// index-addressed slots. A closure handed to ForEach/ForEachWorker/Map
// that writes a captured variable directly — an accumulator, an
// appended slice, a map cell, a struct field — races across workers and
// breaks the serial/parallel byte-equality the determinism tests pin.
//
// Allowed writes inside such a closure:
//   - variables declared inside the closure (per-task locals);
//   - slice/array elements whose index involves a closure-local value
//     (the task index i, the worker slot w, or anything derived from
//     them) — the index-addressed slot pattern.
//
// Everything else is reported: plain assignments and ++/-- on captured
// variables, appends re-assigned to captured slices, writes through
// captured maps (concurrent map writes fault even with distinct keys),
// and field or pointer writes on captured values.
package parsafe

import (
	"go/ast"
	"go/types"

	"rainshine/internal/analysis"
)

// Analyzer is the parsafe pass.
var Analyzer = &analysis.Analyzer{
	Name: "parsafe",
	Doc:  "closures passed to internal/parallel must write only through closure-local or index-addressed state",
	Run:  run,
}

// entryPoints are the internal/parallel functions taking task closures.
var entryPoints = map[string]bool{"ForEach": true, "ForEachWorker": true, "Map": true}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.ObjectOf(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || !entryPoints[fn.Name()] || !isParallelPkg(fn.Pkg().Path()) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					checkClosure(pass, fn.Name(), lit)
				}
			}
			return true
		})
	}
	return nil
}

func isParallelPkg(path string) bool {
	return path == "rainshine/internal/parallel" || path == "parallel"
}

func checkClosure(pass *analysis.Pass, entry string, lit *ast.FuncLit) {
	local := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(pass, entry, lit, local, lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, entry, lit, local, n.X)
		}
		return true
	})
}

// checkWrite vets one write target inside the closure. The target is
// unwound as a selector/index/deref chain down to its root identifier;
// a write whose chain passes through a slice element addressed by a
// closure-local index (grid[gi].Effect, sse[i][k], scratch[w]) is the
// sanctioned slot pattern, anything else touching captured state races.
func checkWrite(pass *analysis.Pass, entry string, lit *ast.FuncLit, local func(types.Object) bool, target ast.Expr) {
	target = ast.Unparen(target)
	if id, ok := target.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if _, isVar := obj.(*types.Var); isVar && !local(obj) {
			pass.Reportf(id.Pos(), "parallel.%s closure writes captured variable %s; tasks must communicate only through index-addressed slots", entry, id.Name)
		}
		return
	}
	root, slotIndexed, mapWrite := unwindChain(pass, local, target)
	if root == nil {
		return
	}
	obj := pass.TypesInfo.ObjectOf(root)
	if _, isVar := obj.(*types.Var); !isVar || local(obj) {
		return
	}
	switch {
	case mapWrite:
		pass.Reportf(target.Pos(), "parallel.%s closure writes captured map %s; concurrent map writes fault even on distinct keys", entry, root.Name)
	case slotIndexed:
		// Index-addressed slot of a captured slice: the contract's
		// sanctioned communication channel.
	default:
		pass.Reportf(target.Pos(), "parallel.%s closure writes captured %s without indexing by a task-local value; slots must be index-addressed", entry, root.Name)
	}
}

// unwindChain walks a selector/index/deref chain to its root ident,
// noting whether it crosses a map cell or a locally indexed slice slot.
func unwindChain(pass *analysis.Pass, local func(types.Object) bool, e ast.Expr) (root *ast.Ident, slotIndexed, mapWrite bool) {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return t, slotIndexed, mapWrite
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			if tx := pass.TypesInfo.TypeOf(t.X); tx != nil {
				if _, isMap := tx.Underlying().(*types.Map); isMap {
					mapWrite = true
				} else if indexUsesLocal(pass, local, t.Index) {
					slotIndexed = true
				}
			}
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil, slotIndexed, mapWrite
		}
	}
}

// indexUsesLocal reports whether the index expression involves any
// closure-local variable (the task/worker parameters or derivations).
func indexUsesLocal(pass *analysis.Pass, local func(types.Object) bool, idx ast.Expr) bool {
	uses := false
	ast.Inspect(idx, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !uses {
			if obj, isVar := pass.TypesInfo.ObjectOf(id).(*types.Var); isVar && local(obj) {
				uses = true
			}
		}
		return !uses
	})
	return uses
}
