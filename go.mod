module rainshine

go 1.24
