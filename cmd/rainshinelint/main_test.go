package main

import (
	"os"
	"path/filepath"
	"testing"
)

// writeModule lays out a throwaway module and chdirs into it.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)
	return dir
}

// TestStandaloneCleanModule: a module with nothing to report exits 0.
func TestStandaloneCleanModule(t *testing.T) {
	writeModule(t, map[string]string{
		"go.mod":    "module scratch\n\ngo 1.24\n",
		"pkg/ok.go": "package pkg\n\nfunc Add(a, b int) int { return a + b }\n",
	})
	if code := standalone([]string{"./..."}, false); code != 0 {
		t.Fatalf("standalone on a clean module = %d, want 0", code)
	}
}

// TestStandaloneLoadErrorIsFatal pins the regression where a package
// that fails to load under ./... was skipped and the run still exited
// 0, masking the breakage from CI.
func TestStandaloneLoadErrorIsFatal(t *testing.T) {
	writeModule(t, map[string]string{
		"go.mod":        "module scratch\n\ngo 1.24\n",
		"pkg/ok.go":     "package pkg\n\nfunc Add(a, b int) int { return a + b }\n",
		"broken/bad.go": "package broken\n\nfunc f() { return undefinedSymbol }\n",
	})
	if code := standalone([]string{"./..."}, false); code == 0 {
		t.Fatal("standalone exited 0 despite a package that fails to typecheck")
	}
}

// TestStandaloneFixIsIdempotent: -fix repairs a copied-lock receiver,
// exits 0, and a second -fix run changes nothing.
func TestStandaloneFixIsIdempotent(t *testing.T) {
	const buggy = `package pkg

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func (c counter) bump() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}
`
	dir := writeModule(t, map[string]string{
		"go.mod":         "module scratch\n\ngo 1.24\n",
		"pkg/counter.go": buggy,
	})
	target := filepath.Join(dir, "pkg", "counter.go")

	if code := standalone([]string{"./..."}, true); code != 0 {
		t.Fatalf("first -fix run = %d, want 0 (the only finding is fixable)", code)
	}
	once, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if string(once) == buggy {
		t.Fatal("-fix did not rewrite the value receiver")
	}

	if code := standalone([]string{"./..."}, true); code != 0 {
		t.Fatalf("second -fix run = %d, want 0", code)
	}
	twice, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if string(once) != string(twice) {
		t.Errorf("-fix is not idempotent:\nfirst pass:\n%s\nsecond pass:\n%s", once, twice)
	}
}
