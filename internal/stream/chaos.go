package stream

import (
	"rainshine/internal/faults"
)

// CorruptRecords perturbs a canonical record sequence (as produced by
// Records, seal last) with the chaos plan's stream-delivery defects:
// duplicated events and tickets, records deferred into the next day
// (out of order but inside the default lateness slack, so the replayed
// study stays byte-identical), and records deferred past the watermark
// (quarantined as LateArrival on replay). The perturbation is a pure
// function of (chaos seed, sequence position); deferred records whose
// release day never arrives are delivered just before the seal.
func CorruptRecords(recs []Record, ch *faults.Chaos) []Record {
	if ch == nil || len(recs) == 0 {
		return recs
	}
	out := make([]Record, 0, len(recs)+len(recs)/8)

	// pending holds deferred records keyed by release day, flushed in
	// day order as delivery time reaches them.
	pending := map[int32][]Record{}
	flushed := int32(0) // release days < flushed are already delivered
	flush := func(upto int32) {
		for d := flushed; d <= upto; d++ {
			out = append(out, pending[d]...)
			delete(pending, d)
		}
		if upto+1 > flushed {
			flushed = upto + 1
		}
	}
	flushAll := func() {
		for len(pending) > 0 {
			min := int32(0)
			first := true
			for d := range pending {
				if first || d < min {
					min, first = d, false
				}
			}
			out = append(out, pending[min]...)
			delete(pending, min)
		}
	}

	day := int32(0)
	for pos := range recs {
		r := recs[pos]
		if r.Kind == KindSeal {
			flushAll()
			out = append(out, r)
			continue
		}
		if r.Day > day {
			day = r.Day
			flush(day)
		}
		if late, ok := ch.StreamLate(pos); ok {
			pending[r.Day+int32(late)] = append(pending[r.Day+int32(late)], r)
			continue
		}
		if ch.StreamReorder(pos) {
			pending[r.Day+1] = append(pending[r.Day+1], r)
			continue
		}
		out = append(out, r)
		if (r.Kind == KindEvent || r.Kind == KindTicket) && ch.StreamDuplicate(pos) {
			out = append(out, r)
		}
	}
	flushAll()
	return out
}
