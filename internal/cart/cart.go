// Package cart implements Classification and Regression Trees (Breiman
// et al., 1984) from scratch: the learner behind the paper's multi-factor
// (MF) analysis, equivalent in role to the R rpart package the authors
// used.
//
// Capabilities:
//   - regression trees (variance / SSE splitting) and classification
//     trees (Gini impurity);
//   - continuous, ordinal, and nominal features; nominal splits use the
//     optimal category-ordering theorem (sort categories by mean response
//     and scan, which is exact for regression and two-class problems);
//   - missing-value tolerance: non-finite feature cells are treated as
//     missing — splits are searched over available cases only, and
//     missing rows follow the majority child (rpart's surrogate-free
//     fallback), at training and prediction time alike;
//   - stopping rules (max depth, minimum node/leaf sizes, minimum
//     relative improvement, mirroring rpart's cp);
//   - weakest-link cost-complexity pruning;
//   - relative variable importance (rpart-style, scaled to 100);
//   - leaf extraction and row→leaf assignment, which the paper uses to
//     cluster racks with similar failure behaviour (Q1).
package cart

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"rainshine/internal/frame"
)

// Task selects the tree type.
type Task int

const (
	// Regression grows a tree minimizing sum of squared errors.
	Regression Task = iota
	// Classification grows a tree minimizing Gini impurity. The target
	// column must be categorical.
	Classification
)

// Config holds the stopping and growth rules.
type Config struct {
	Task Task
	// MaxDepth limits tree depth; root is depth 0. Zero means 10.
	MaxDepth int
	// MinSplit is the minimum number of rows a node needs before a
	// split is attempted. Zero means 20 (rpart default).
	MinSplit int
	// MinLeaf is the minimum number of rows in each child. Zero means
	// MinSplit/3, floor 1 (rpart default).
	MinLeaf int
	// CP is the complexity parameter: a split must reduce the tree's
	// total impurity by at least CP * root impurity. Zero means 0.01
	// (rpart default). Negative means no improvement threshold.
	CP float64
}

func (c Config) withDefaults() Config {
	if c.MaxDepth == 0 {
		c.MaxDepth = 10
	}
	if c.MinSplit == 0 {
		c.MinSplit = 20
	}
	if c.MinLeaf == 0 {
		c.MinLeaf = c.MinSplit / 3
		if c.MinLeaf < 1 {
			c.MinLeaf = 1
		}
	}
	if c.CP == 0 {
		c.CP = 0.01
	}
	return c
}

// Feature describes one predictor used by a tree.
type Feature struct {
	Name   string
	Kind   frame.Kind
	Levels []string // for categorical features
}

// Node is one tree node. Leaves have Left == Right == nil.
type Node struct {
	// Split definition (internal nodes only).
	Feature   int     // index into Tree.Features
	Threshold float64 // continuous/ordinal: left if x <= Threshold
	LeftSet   []uint64
	// DefaultLeft routes values unseen at training time (e.g. a nominal
	// level absent from this node) toward the larger child.
	DefaultLeft bool

	Left, Right *Node

	// Statistics (all nodes).
	N           int
	Value       float64   // mean response (regression) or majority class index
	Impurity    float64   // SSE (regression) or weighted Gini (classification)
	ClassCounts []float64 // classification only

	// LeafID numbers leaves left-to-right; -1 for internal nodes.
	LeafID int
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Left == nil }

// inLeftSet reports whether category c routes left.
func (n *Node) inLeftSet(c int) bool {
	w := c / 64
	if w < 0 || w >= len(n.LeftSet) {
		return false
	}
	return n.LeftSet[w]&(1<<(uint(c)%64)) != 0
}

// Tree is a fitted CART model.
type Tree struct {
	Root     *Node
	Features []Feature
	Target   string
	Task     Task
	// ClassLevels holds target levels for classification trees.
	ClassLevels []string
	// importanceRaw accumulates impurity decrease per feature.
	importanceRaw []float64
	leaves        []*Node
}

// Fit grows a tree predicting target from the named feature columns of f.
func Fit(f *frame.Frame, target string, features []string, cfg Config) (*Tree, error) {
	cfg = cfg.withDefaults()
	if f.NumRows() == 0 {
		return nil, errors.New("cart: empty frame")
	}
	if len(features) == 0 {
		return nil, errors.New("cart: no features")
	}
	tc, err := f.Col(target)
	if err != nil {
		return nil, err
	}
	t := &Tree{Target: target, Task: cfg.Task}
	// Materialize the target.
	var y []float64
	switch cfg.Task {
	case Regression:
		y = tc.Data
		for i, v := range y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("cart: non-finite target at row %d", i)
			}
		}
	case Classification:
		if tc.Kind == frame.Continuous {
			return nil, fmt.Errorf("cart: classification target %q must be categorical", target)
		}
		y = tc.Data
		t.ClassLevels = tc.Levels
	default:
		return nil, fmt.Errorf("cart: unknown task %d", cfg.Task)
	}
	// Materialize features.
	cols := make([][]float64, len(features))
	for i, name := range features {
		c, err := f.Col(name)
		if err != nil {
			return nil, err
		}
		if name == target {
			return nil, fmt.Errorf("cart: target %q used as feature", name)
		}
		// Non-finite feature cells are legal: they are missing values,
		// handled by available-case splitting and majority-side routing.
		cols[i] = c.Data
		t.Features = append(t.Features, Feature{Name: name, Kind: c.Kind, Levels: c.Levels})
	}
	t.importanceRaw = make([]float64, len(features))

	idx := make([]int, f.NumRows())
	for i := range idx {
		idx[i] = i
	}
	b := &builder{cfg: cfg, tree: t, y: y, cols: cols}
	if cfg.Task == Classification {
		b.nClasses = len(t.ClassLevels)
	}
	root := b.node(idx)
	b.rootImpurity = root.Impurity
	b.grow(root, idx, 0)
	t.Root = root
	t.numberLeaves()
	return t, nil
}

type builder struct {
	cfg          Config
	tree         *Tree
	y            []float64
	cols         [][]float64
	nClasses     int
	rootImpurity float64
}

// node computes leaf statistics for the rows in idx.
func (b *builder) node(idx []int) *Node {
	n := &Node{N: len(idx), Feature: -1, LeafID: -1}
	if b.cfg.Task == Regression {
		sum, sq := 0.0, 0.0
		for _, r := range idx {
			v := b.y[r]
			sum += v
			sq += v * v
		}
		mean := sum / float64(len(idx))
		n.Value = mean
		n.Impurity = sq - sum*mean // SSE = sum(y^2) - n*mean^2
		if n.Impurity < 0 {
			n.Impurity = 0 // guard against rounding
		}
		return n
	}
	counts := make([]float64, b.nClasses)
	for _, r := range idx {
		counts[int(b.y[r])]++
	}
	n.ClassCounts = counts
	best, bestC := -1.0, 0
	ss := 0.0
	total := float64(len(idx))
	for c, cnt := range counts {
		if cnt > best {
			best, bestC = cnt, c
		}
		p := cnt / total
		ss += p * p
	}
	n.Value = float64(bestC)
	n.Impurity = total * (1 - ss) // N-weighted Gini
	return n
}

// grow recursively splits node over rows idx.
func (b *builder) grow(n *Node, idx []int, depth int) {
	if depth >= b.cfg.MaxDepth || len(idx) < b.cfg.MinSplit || n.Impurity <= 1e-12 {
		return
	}
	sp := b.bestSplit(idx)
	if sp.feature < 0 {
		return
	}
	minGain := 0.0
	if b.cfg.CP > 0 {
		minGain = b.cfg.CP * b.rootImpurity
	}
	if sp.gain < minGain {
		return
	}
	n.Feature = sp.feature
	n.Threshold = sp.threshold
	n.LeftSet = sp.leftSet
	b.tree.importanceRaw[sp.feature] += sp.gain

	left, right, missing := b.partition(n, idx)
	n.DefaultLeft = len(left) >= len(right)
	// Rows missing the split feature follow the majority child, the
	// same route unseen values take at prediction time.
	if n.DefaultLeft {
		left = append(left, missing...)
	} else {
		right = append(right, missing...)
	}
	n.Left = b.node(left)
	n.Right = b.node(right)
	b.grow(n.Left, left, depth+1)
	b.grow(n.Right, right, depth+1)
}

// partition routes idx rows through node n's split; rows with a missing
// split value are returned separately for majority-side assignment.
func (b *builder) partition(n *Node, idx []int) (left, right, missing []int) {
	feat := b.tree.Features[n.Feature]
	col := b.cols[n.Feature]
	for _, r := range idx {
		v := col[r]
		if !isFinite(v) {
			missing = append(missing, r)
			continue
		}
		if routeLeft(feat.Kind, n, v) {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	return left, right, missing
}

// isFinite reports whether a feature cell carries a usable value.
func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

func routeLeft(kind frame.Kind, n *Node, v float64) bool {
	if kind == frame.Nominal {
		return n.inLeftSet(int(v))
	}
	return v <= n.Threshold
}

type split struct {
	feature   int
	threshold float64
	leftSet   []uint64
	gain      float64
}

// bestSplit searches all features for the impurity-minimizing split.
func (b *builder) bestSplit(idx []int) split {
	best := split{feature: -1}
	for fi := range b.cols {
		var s split
		var ok bool
		if b.tree.Features[fi].Kind == frame.Nominal {
			s, ok = b.bestNominalSplit(fi, idx)
		} else {
			s, ok = b.bestNumericSplit(fi, idx)
		}
		if ok && s.gain > best.gain {
			best = s
		}
	}
	return best
}

// bestNumericSplit scans sorted values of a continuous/ordinal feature.
// Missing cells are excluded from the scan (available-case splitting).
func (b *builder) bestNumericSplit(fi int, idx []int) (split, bool) {
	col := b.cols[fi]
	sorted := make([]int, 0, len(idx))
	for _, r := range idx {
		if isFinite(col[r]) {
			sorted = append(sorted, r)
		}
	}
	if len(sorted) < 2*b.cfg.MinLeaf || len(sorted) < 2 {
		return split{}, false
	}
	sort.Slice(sorted, func(a, c int) bool { return col[sorted[a]] < col[sorted[c]] })

	parentImp := 0.0
	var scan func() (bestPos int, bestGain float64)
	if b.cfg.Task == Regression {
		n := len(sorted)
		totalSum, totalSq := 0.0, 0.0
		for _, r := range sorted {
			totalSum += b.y[r]
			totalSq += b.y[r] * b.y[r]
		}
		parentImp = totalSq - totalSum*totalSum/float64(n)
		scan = func() (int, float64) {
			bestPos, bestGain := -1, 0.0
			leftSum := 0.0
			leftSq := 0.0
			for i := 0; i < n-1; i++ {
				r := sorted[i]
				leftSum += b.y[r]
				leftSq += b.y[r] * b.y[r]
				if col[sorted[i]] == col[sorted[i+1]] {
					continue // cannot split between equal values
				}
				nl, nr := i+1, n-i-1
				if nl < b.cfg.MinLeaf || nr < b.cfg.MinLeaf {
					continue
				}
				rightSum := totalSum - leftSum
				rightSq := totalSq - leftSq
				childImp := (leftSq - leftSum*leftSum/float64(nl)) +
					(rightSq - rightSum*rightSum/float64(nr))
				if g := parentImp - childImp; g > bestGain {
					bestGain, bestPos = g, i
				}
			}
			return bestPos, bestGain
		}
	} else {
		n := len(sorted)
		total := make([]float64, b.nClasses)
		for _, r := range sorted {
			total[int(b.y[r])]++
		}
		parentImp = giniSSE(total, float64(n))
		left := make([]float64, b.nClasses)
		scan = func() (int, float64) {
			bestPos, bestGain := -1, 0.0
			for i := 0; i < n-1; i++ {
				left[int(b.y[sorted[i]])]++
				if col[sorted[i]] == col[sorted[i+1]] {
					continue
				}
				nl, nr := i+1, n-i-1
				if nl < b.cfg.MinLeaf || nr < b.cfg.MinLeaf {
					continue
				}
				childImp := giniFromLeft(left, total, float64(nl), float64(nr))
				if g := parentImp - childImp; g > bestGain {
					bestGain, bestPos = g, i
				}
			}
			return bestPos, bestGain
		}
	}
	pos, gain := scan()
	if pos < 0 || gain <= 0 {
		return split{}, false
	}
	thr := (col[sorted[pos]] + col[sorted[pos+1]]) / 2
	return split{feature: fi, threshold: thr, gain: gain}, true
}

// giniSSE returns n * Gini for class counts.
func giniSSE(counts []float64, n float64) float64 {
	if n == 0 {
		return 0
	}
	ss := 0.0
	for _, c := range counts {
		p := c / n
		ss += p * p
	}
	return n * (1 - ss)
}

func giniFromLeft(left, total []float64, nl, nr float64) float64 {
	lImp := giniSSE(left, nl)
	right := make([]float64, len(total))
	for i := range total {
		right[i] = total[i] - left[i]
	}
	return lImp + giniSSE(right, nr)
}

// bestNominalSplit orders categories by mean response (regression) or by
// first-class proportion (classification) and scans boundaries. The
// ordering is provably optimal for regression and two-class targets
// (Breiman et al., Thm 4.5); for multiclass it is a standard heuristic.
func (b *builder) bestNominalSplit(fi int, idx []int) (split, bool) {
	col := b.cols[fi]
	// Available-case filtering: rows missing this feature sit out the
	// search and follow the majority child at partition time.
	avail := idx
	for _, r := range idx {
		if !isFinite(col[r]) {
			avail = make([]int, 0, len(idx))
			for _, r2 := range idx {
				if isFinite(col[r2]) {
					avail = append(avail, r2)
				}
			}
			break
		}
	}
	idx = avail
	if len(idx) < 2*b.cfg.MinLeaf || len(idx) < 2 {
		return split{}, false
	}
	nLevels := len(b.tree.Features[fi].Levels)
	counts := make([]int, nLevels)
	score := make([]float64, nLevels) // order key per category
	if b.cfg.Task == Regression {
		sums := make([]float64, nLevels)
		for _, r := range idx {
			c := int(col[r])
			counts[c]++
			sums[c] += b.y[r]
		}
		for c := range score {
			if counts[c] > 0 {
				score[c] = sums[c] / float64(counts[c])
			}
		}
	} else {
		firstClass := make([]float64, nLevels)
		for _, r := range idx {
			c := int(col[r])
			counts[c]++
			if int(b.y[r]) == 0 {
				firstClass[c]++
			}
		}
		for c := range score {
			if counts[c] > 0 {
				score[c] = firstClass[c] / float64(counts[c])
			}
		}
	}
	present := make([]int, 0, nLevels)
	for c, n := range counts {
		if n > 0 {
			present = append(present, c)
		}
	}
	if len(present) < 2 {
		return split{}, false
	}
	sort.Slice(present, func(a, c int) bool { return score[present[a]] < score[present[c]] })

	// Scan over the category ordering: rows are processed category by
	// category, reusing the numeric machinery over a virtual ordering.
	n := len(idx)
	bestGain := 0.0
	bestCut := -1
	if b.cfg.Task == Regression {
		totalSum, totalSq := 0.0, 0.0
		catSum := make([]float64, nLevels)
		catSq := make([]float64, nLevels)
		for _, r := range idx {
			c := int(col[r])
			catSum[c] += b.y[r]
			catSq[c] += b.y[r] * b.y[r]
			totalSum += b.y[r]
			totalSq += b.y[r] * b.y[r]
		}
		parentImp := totalSq - totalSum*totalSum/float64(n)
		leftSum, leftSq, nl := 0.0, 0.0, 0
		for k := 0; k < len(present)-1; k++ {
			c := present[k]
			leftSum += catSum[c]
			leftSq += catSq[c]
			nl += counts[c]
			nr := n - nl
			if nl < b.cfg.MinLeaf || nr < b.cfg.MinLeaf {
				continue
			}
			rightSum := totalSum - leftSum
			rightSq := totalSq - leftSq
			childImp := (leftSq - leftSum*leftSum/float64(nl)) +
				(rightSq - rightSum*rightSum/float64(nr))
			if g := parentImp - childImp; g > bestGain {
				bestGain, bestCut = g, k
			}
		}
	} else {
		total := make([]float64, b.nClasses)
		catClass := make([][]float64, nLevels)
		for _, r := range idx {
			c := int(col[r])
			if catClass[c] == nil {
				catClass[c] = make([]float64, b.nClasses)
			}
			catClass[c][int(b.y[r])]++
			total[int(b.y[r])]++
		}
		parentImp := giniSSE(total, float64(n))
		left := make([]float64, b.nClasses)
		nl := 0
		for k := 0; k < len(present)-1; k++ {
			c := present[k]
			for cl := range left {
				left[cl] += catClass[c][cl]
			}
			nl += counts[c]
			nr := n - nl
			if nl < b.cfg.MinLeaf || nr < b.cfg.MinLeaf {
				continue
			}
			childImp := giniFromLeft(left, total, float64(nl), float64(nr))
			if g := parentImp - childImp; g > bestGain {
				bestGain, bestCut = g, k
			}
		}
	}
	if bestCut < 0 || bestGain <= 0 {
		return split{}, false
	}
	set := make([]uint64, (nLevels+63)/64)
	for k := 0; k <= bestCut; k++ {
		c := present[k]
		set[c/64] |= 1 << (uint(c) % 64)
	}
	return split{feature: fi, leftSet: set, gain: bestGain}, true
}

// numberLeaves assigns LeafID values in left-to-right order and caches
// the leaf list.
func (t *Tree) numberLeaves() {
	t.leaves = t.leaves[:0]
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			n.LeafID = len(t.leaves)
			t.leaves = append(t.leaves, n)
			return
		}
		n.LeafID = -1
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
}

// Leaves returns the tree's leaves in left-to-right order.
func (t *Tree) Leaves() []*Node { return t.leaves }

// NumLeaves returns the number of leaves.
func (t *Tree) NumLeaves() int { return len(t.leaves) }

// Depth returns the depth of the tree (root = 0).
func (t *Tree) Depth() int {
	var d func(n *Node) int
	d = func(n *Node) int {
		if n.IsLeaf() {
			return 0
		}
		l, r := d(n.Left), d(n.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return d(t.Root)
}

// leafFor routes one row (given as per-feature values) to its leaf.
func (t *Tree) leafFor(x []float64) *Node {
	n := t.Root
	for !n.IsLeaf() {
		feat := t.Features[n.Feature]
		v := x[n.Feature]
		var goLeft bool
		switch {
		case !isFinite(v):
			// Missing value: follow the majority child, mirroring the
			// training-time assignment.
			goLeft = n.DefaultLeft
		case feat.Kind == frame.Nominal:
			c := int(v)
			if c < 0 || c >= len(feat.Levels) {
				goLeft = n.DefaultLeft
			} else {
				goLeft = n.inLeftSet(c)
			}
		default:
			goLeft = v <= n.Threshold
		}
		if goLeft {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n
}

// Predict returns the model output for one row of feature values, in the
// order of Tree.Features. For regression this is the leaf mean; for
// classification the majority class index.
func (t *Tree) Predict(x []float64) (float64, error) {
	if len(x) != len(t.Features) {
		return 0, fmt.Errorf("cart: got %d features, want %d", len(x), len(t.Features))
	}
	return t.leafFor(x).Value, nil
}

// PredictProba returns the class-probability vector for one row of a
// classification tree (the class frequencies of the reached leaf).
func (t *Tree) PredictProba(x []float64) ([]float64, error) {
	if t.Task != Classification {
		return nil, errors.New("cart: PredictProba requires a classification tree")
	}
	if len(x) != len(t.Features) {
		return nil, fmt.Errorf("cart: got %d features, want %d", len(x), len(t.Features))
	}
	leaf := t.leafFor(x)
	out := make([]float64, len(leaf.ClassCounts))
	total := 0.0
	for _, c := range leaf.ClassCounts {
		total += c
	}
	if total == 0 {
		return out, nil
	}
	for i, c := range leaf.ClassCounts {
		out[i] = c / total
	}
	return out, nil
}

// ProbaFrame returns, for every row of f, the probability of the class
// with the given index (classification trees only).
func (t *Tree) ProbaFrame(f *frame.Frame, class int) ([]float64, error) {
	if t.Task != Classification {
		return nil, errors.New("cart: ProbaFrame requires a classification tree")
	}
	if class < 0 || class >= len(t.ClassLevels) {
		return nil, fmt.Errorf("cart: class %d out of range [0,%d)", class, len(t.ClassLevels))
	}
	cols, err := t.featureCols(f)
	if err != nil {
		return nil, err
	}
	out := make([]float64, f.NumRows())
	x := make([]float64, len(cols))
	for r := range out {
		for i, c := range cols {
			x[i] = c[r]
		}
		leaf := t.leafFor(x)
		total := 0.0
		for _, cc := range leaf.ClassCounts {
			total += cc
		}
		if total > 0 {
			out[r] = leaf.ClassCounts[class] / total
		}
	}
	return out, nil
}

// PredictFrame predicts every row of f, which must contain the tree's
// feature columns.
func (t *Tree) PredictFrame(f *frame.Frame) ([]float64, error) {
	cols, err := t.featureCols(f)
	if err != nil {
		return nil, err
	}
	out := make([]float64, f.NumRows())
	x := make([]float64, len(cols))
	for r := range out {
		for i, c := range cols {
			x[i] = c[r]
		}
		out[r] = t.leafFor(x).Value
	}
	return out, nil
}

// AssignLeaves returns the LeafID for every row of f. The paper uses
// this to cluster racks into groups with similar failure behaviour.
func (t *Tree) AssignLeaves(f *frame.Frame) ([]int, error) {
	cols, err := t.featureCols(f)
	if err != nil {
		return nil, err
	}
	out := make([]int, f.NumRows())
	x := make([]float64, len(cols))
	for r := range out {
		for i, c := range cols {
			x[i] = c[r]
		}
		out[r] = t.leafFor(x).LeafID
	}
	return out, nil
}

func (t *Tree) featureCols(f *frame.Frame) ([][]float64, error) {
	cols := make([][]float64, len(t.Features))
	for i, feat := range t.Features {
		c, err := f.Col(feat.Name)
		if err != nil {
			return nil, err
		}
		cols[i] = c.Data
	}
	return cols, nil
}

// Importance returns per-feature relative importance scaled so the most
// important feature scores 100 (rpart's convention). Features never used
// in a split score 0.
func (t *Tree) Importance() map[string]float64 {
	out := make(map[string]float64, len(t.Features))
	maxRaw := 0.0
	for _, v := range t.importanceRaw {
		if v > maxRaw {
			maxRaw = v
		}
	}
	for i, feat := range t.Features {
		if maxRaw == 0 {
			out[feat.Name] = 0
			continue
		}
		// Divide before scaling so the top feature is exactly 100 (the
		// other order can overshoot by an ulp).
		out[feat.Name] = 100 * (t.importanceRaw[i] / maxRaw)
	}
	return out
}

// RankedFeatures returns feature names ordered by decreasing importance.
func (t *Tree) RankedFeatures() []string {
	type fi struct {
		name string
		imp  float64
	}
	list := make([]fi, len(t.Features))
	imp := t.Importance()
	for i, f := range t.Features {
		list[i] = fi{f.Name, imp[f.Name]}
	}
	sort.SliceStable(list, func(a, b int) bool { return list[a].imp > list[b].imp })
	out := make([]string, len(list))
	for i, e := range list {
		out[i] = e.name
	}
	return out
}
