package resilience

import (
	"errors"
	"testing"
	"time"
)

func TestBreakerTripsAtThreshold(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(3, 10*time.Second, clk.now)

	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("allow %d while closed: %v", i, err)
		}
		b.RecordFailure()
		if got := b.State(); got != Closed {
			t.Fatalf("state after %d failures = %s, want closed", i+1, got)
		}
	}
	b.Allow()
	b.RecordFailure() // third consecutive failure trips
	if got := b.State(); got != Open {
		t.Fatalf("state = %s, want open", got)
	}
	if got := b.Opens(); got != 1 {
		t.Errorf("opens = %d, want 1", got)
	}

	err := b.Allow()
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != BreakerOpen {
		t.Fatalf("allow while open = %v, want breaker_open", err)
	}
	if shed.RetryAfter != 10*time.Second {
		t.Errorf("RetryAfter = %s, want the 10s cooldown", shed.RetryAfter)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := NewBreaker(2, time.Second, newFakeClock().now)
	b.Allow()
	b.RecordFailure()
	b.Allow()
	b.RecordSuccess() // streak broken
	b.Allow()
	b.RecordFailure()
	if got := b.State(); got != Closed {
		t.Errorf("state = %s, want closed (failures are not consecutive)", got)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(1, 5*time.Second, clk.now)
	b.Allow()
	b.RecordFailure()
	if b.State() != Open {
		t.Fatal("breaker should be open")
	}

	// Before the cooldown: still shedding.
	clk.advance(4 * time.Second)
	if err := b.Allow(); err == nil {
		t.Fatal("allow before cooldown should shed")
	}

	// After the cooldown: exactly one probe admitted, concurrent
	// attempts shed while it is outstanding.
	clk.advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe not admitted: %v", err)
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %s, want half_open", b.State())
	}
	if err := b.Allow(); err == nil {
		t.Fatal("second attempt during outstanding probe should shed")
	}

	// Probe success closes the circuit.
	b.RecordSuccess()
	if b.State() != Closed {
		t.Fatalf("state after probe success = %s, want closed", b.State())
	}

	// Trip again; this time the probe fails and the circuit reopens.
	b.Allow()
	b.RecordFailure()
	clk.advance(6 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe not admitted: %v", err)
	}
	b.RecordFailure()
	if b.State() != Open {
		t.Fatalf("state after probe failure = %s, want open", b.State())
	}
	if got := b.Opens(); got != 3 {
		t.Errorf("opens = %d, want 3", got)
	}
}

func TestBreakerCanceledProbeReleases(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(1, time.Second, clk.now)
	b.Allow()
	b.RecordFailure()
	clk.advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe not admitted: %v", err)
	}
	b.RecordCanceled() // abandoned, not judged
	if b.State() != HalfOpen {
		t.Fatalf("state = %s, want half_open retained", b.State())
	}
	// The probe slot must be reusable, or the breaker would wedge.
	if err := b.Allow(); err != nil {
		t.Fatalf("probe after canceled probe: %v", err)
	}
}

func TestBreakerNilIsDisabled(t *testing.T) {
	var b *Breaker
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.RecordFailure()
	b.RecordSuccess()
	b.RecordCanceled()
	if b.State() != Closed || b.Opens() != 0 {
		t.Error("nil breaker should report closed/0")
	}
	if NewBreaker(0, time.Second, nil) != nil {
		t.Error("threshold 0 should build a nil (disabled) breaker")
	}
}
