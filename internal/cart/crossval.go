package cart

import (
	"context"
	"errors"
	"fmt"
	"math"

	"rainshine/internal/frame"
	"rainshine/internal/parallel"
	"rainshine/internal/rng"
)

// CPRow is one row of a cross-validation complexity table, mirroring
// rpart's printcp output: for each candidate complexity parameter, the
// relative cross-validated error of the tree pruned at that cp.
type CPRow struct {
	CP float64
	// Leaves is the leaf count of the full-data tree pruned at CP.
	Leaves int
	// XError is the k-fold cross-validated SSE, relative to the root
	// (predict-the-mean) error; 1.0 means no better than a stump.
	XError float64
	// XStd is the standard error of XError across folds.
	XStd float64
}

// CrossValidate evaluates candidate cp values by k-fold cross-validation
// of regression trees, the procedure rpart uses to let analysts pick a
// complexity that generalizes. cfg.CP is ignored; each candidate is
// applied by pruning. Deterministic given the seed, for every value of
// cfg.Workers: folds write only their own slots of the error matrix,
// which is reduced in candidate order afterwards. It is
// CrossValidateContext with context.Background(); use that variant to
// make the fold fan-out cancellable.
func CrossValidate(f *frame.Frame, target string, features []string, cfg Config, candidates []float64, folds int, seed uint64) ([]CPRow, error) {
	return CrossValidateContext(context.Background(), f, target, features, cfg, candidates, folds, seed)
}

// CrossValidateContext is CrossValidate under a context: the fold ×
// candidate grid fans across cfg.Workers goroutines and stops early when
// ctx is canceled.
func CrossValidateContext(ctx context.Context, f *frame.Frame, target string, features []string, cfg Config, candidates []float64, folds int, seed uint64) ([]CPRow, error) {
	if folds < 2 {
		return nil, errors.New("cart: need at least 2 folds")
	}
	if f.NumRows() < folds*2 {
		return nil, fmt.Errorf("cart: %d rows cannot fill %d folds", f.NumRows(), folds)
	}
	if len(candidates) == 0 {
		return nil, errors.New("cart: no cp candidates")
	}
	if cfg.Task != Regression {
		return nil, errors.New("cart: cross-validation implemented for regression trees")
	}
	// Assign rows to folds by a deterministic shuffle.
	n := f.NumRows()
	perm := rng.New(seed).Split("cart/cv").Perm(n)
	foldOf := make([]int, n)
	for i, p := range perm {
		foldOf[p] = i % folds
	}
	tc, err := f.Col(target)
	if err != nil {
		return nil, err
	}
	// Root (predict-the-mean) error per fold, for normalization.
	rootSSE := make([]float64, folds)
	foldRows := make([][]int, folds)
	trainRows := make([][]int, folds)
	for r := 0; r < n; r++ {
		k := foldOf[r]
		foldRows[k] = append(foldRows[k], r)
		for j := 0; j < folds; j++ {
			if j != k {
				trainRows[j] = append(trainRows[j], r)
			}
		}
	}
	// Per-fold, per-candidate test SSE.
	sse := make([][]float64, len(candidates))
	for i := range sse {
		sse[i] = make([]float64, folds)
	}
	for i, cp := range candidates {
		if i > 0 && cp < candidates[i-1] {
			return nil, errors.New("cart: cp candidates must be ascending")
		}
	}
	growCfg := cfg
	growCfg.CP = -1 // grow fully; candidates are applied by pruning
	// Folds are independent — each writes only rootSSE[k] and the k-th
	// column of sse — so they fan across the pool; the extra task index
	// grows the full-data tree (needed below for leaf counts) alongside.
	var full *Tree
	err = parallel.ForEach(ctx, cfg.Workers, folds+1, func(k int) error {
		if k == folds {
			var ferr error
			// Exactly one task (k == folds) writes full, so the write
			// is exclusive even though it is not a per-index slot.
			//lint:allow parsafe only the dedicated k==folds task writes full
			full, ferr = FitContext(ctx, f, target, features, growCfg)
			return ferr
		}
		train := f.Subset(trainRows[k])
		trainMean := 0.0
		trainTarget, err := train.Col(target)
		if err != nil {
			return err
		}
		for _, v := range trainTarget.Data {
			trainMean += v
		}
		trainMean /= float64(len(trainTarget.Data))
		for _, r := range foldRows[k] {
			d := tc.Data[r] - trainMean
			rootSSE[k] += d * d
		}
		tree, err := FitContext(ctx, train, target, features, growCfg)
		if err != nil {
			return fmt.Errorf("cart: fold %d: %w", k, err)
		}
		test := f.Subset(foldRows[k])
		// Candidates ascend, and pruning at a larger cp only removes
		// more nodes, so successive Prune calls reuse the same tree.
		for i := range candidates {
			tree.Prune(candidates[i])
			preds, err := tree.PredictFrameContext(ctx, test, 1)
			if err != nil {
				return err
			}
			for j, r := range foldRows[k] {
				d := tc.Data[r] - preds[j]
				sse[i][k] += d * d
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]CPRow, len(candidates))
	for i, cp := range candidates {
		full.Prune(cp)
		rel := make([]float64, folds)
		mean := 0.0
		for k := 0; k < folds; k++ {
			if rootSSE[k] > 0 {
				rel[k] = sse[i][k] / rootSSE[k]
			}
			mean += rel[k]
		}
		mean /= float64(folds)
		varr := 0.0
		for k := 0; k < folds; k++ {
			d := rel[k] - mean
			varr += d * d
		}
		out[i] = CPRow{
			CP:     cp,
			Leaves: full.NumLeaves(),
			XError: mean,
			XStd:   math.Sqrt(varr / float64(folds*(folds-1))),
		}
	}
	return out, nil
}

// BestCP returns the candidate chosen by the one-standard-error rule:
// the largest cp whose cross-validated error is within one standard
// error of the minimum (rpart's recommended selection).
func BestCP(table []CPRow) (float64, error) {
	if len(table) == 0 {
		return 0, errors.New("cart: empty cp table")
	}
	best := table[0]
	for _, row := range table[1:] {
		if row.XError < best.XError {
			best = row
		}
	}
	threshold := best.XError + best.XStd
	chosen := best
	for _, row := range table {
		if row.XError <= threshold && row.CP > chosen.CP {
			chosen = row
		}
	}
	return chosen.CP, nil
}
